//! Deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 so that any `u64` seed yields a well-mixed initial state. The
//! implementation is frozen in this crate: identical seeds produce identical
//! streams forever, which is what makes every survey in this workspace
//! reproducible.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for cheap stream derivation; not exposed as a
/// general-purpose generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random generator.
///
/// # Examples
///
/// ```
/// use perils_util::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so seeds `0`, `1`, `2`, …
    /// produce statistically independent streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking lets components (topology generation, fault injection, server
    /// selection, …) consume randomness without perturbing each other's
    /// streams, so adding a draw in one component never changes another's
    /// results.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a non-zero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range requires lo < hi (got {lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below_usize(items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (floyd's algorithm order is
    /// not needed; we shuffle a partial reservoir for small `k`).
    ///
    /// Returns fewer than `k` indices when `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Reservoir sampling keeps memory at O(k) even for large n.
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below_usize(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams for different seeds should not collide");
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        let parent = Rng::new(99);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut f3 = parent.fork(2);
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} outside tolerance"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_bound_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn range_bounds_inclusive_exclusive() {
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Rng::new(6);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_probability_estimate() {
        let mut rng = Rng::new(9);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = Rng::new(10);
        assert!(rng.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let original = v.clone();
        rng.shuffle(&mut v);
        assert_ne!(v, original, "a 100-element shuffle should permute");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must preserve multiset");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::new(11);
        let sample = rng.sample_indices(50, 10);
        assert_eq!(sample.len(), 10);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 50));
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
        assert!(rng.sample_indices(0, 5).is_empty());
    }
}
