//! Descriptive statistics and figure-shaped aggregations.
//!
//! Every figure in the paper is one of three shapes:
//!
//! * a **CDF** over per-name quantities (Figures 2, 5, 7) — [`Cdf`];
//! * a **bar chart of group means** (Figures 3, 4) — [`Summary`] per group;
//! * a **log–log rank curve** (Figures 6, 8, 9) — [`RankCurve`].
//!
//! These types are deliberately plain data so analysis pipelines can be
//! tested without IO.

/// Five-number-style summary of a sample of non-negative quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for an empty sample).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary of `values` (need not be sorted).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            median,
            min: sorted[0],
            max: sorted[count - 1],
            stddev: var.sqrt(),
        }
    }

    /// Convenience: summary of integer counts.
    pub fn of_counts(values: &[usize]) -> Summary {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&as_f64)
    }
}

/// An empirical cumulative distribution over integer-valued observations.
///
/// Stored as sorted observations; queries are O(log n).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample (any order).
    pub fn of(values: &[f64]) -> Cdf {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        Cdf { sorted }
    }

    /// Builds a CDF from integer counts.
    pub fn of_counts(values: &[usize]) -> Cdf {
        Cdf::of(&values.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x`, in `[0, 1]`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations `> x`, in `[0, 1]`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank).
    ///
    /// Returns 0 for an empty sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Emits `(x, percent <= x)` plot points at each distinct value,
    /// downsampled to at most `max_points` points (endpoints always kept).
    pub fn plot_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let mut points: Vec<(f64, f64)> = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == v {
                j += 1;
            }
            points.push((v, 100.0 * j as f64 / n as f64));
            i = j;
        }
        if points.len() <= max_points {
            return points;
        }
        let stride = points.len().div_ceil(max_points);
        let last = *points.last().expect("non-empty");
        let mut sampled: Vec<(f64, f64)> = points.into_iter().step_by(stride).collect();
        if sampled.last() != Some(&last) {
            sampled.push(last);
        }
        sampled
    }
}

/// A descending rank curve: value of the k-th largest observation, as plotted
/// in the paper's Figures 8 and 9 (log–log rank vs. names controlled).
#[derive(Debug, Clone)]
pub struct RankCurve {
    /// Values sorted descending; index 0 is rank 1.
    pub descending: Vec<f64>,
}

impl RankCurve {
    /// Builds the curve from a sample (any order).
    pub fn of(values: &[f64]) -> RankCurve {
        let mut descending = values.to_vec();
        descending.sort_by(|a, b| b.partial_cmp(a).expect("values must not be NaN"));
        RankCurve { descending }
    }

    /// Builds the curve from integer counts.
    pub fn of_counts(values: &[usize]) -> RankCurve {
        RankCurve::of(&values.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }

    /// Number of ranked entities.
    pub fn len(&self) -> usize {
        self.descending.len()
    }

    /// True when the curve has no entries.
    pub fn is_empty(&self) -> bool {
        self.descending.is_empty()
    }

    /// Value at 1-based `rank`, or `None` past the end.
    pub fn at_rank(&self, rank: usize) -> Option<f64> {
        if rank == 0 {
            return None;
        }
        self.descending.get(rank - 1).copied()
    }

    /// Number of entities with value at least `threshold`.
    pub fn count_at_least(&self, threshold: f64) -> usize {
        self.descending.partition_point(|&v| v >= threshold)
    }

    /// Emits `(rank, value)` points sampled log-uniformly in rank, suitable
    /// for a log–log plot. Always includes rank 1 and the final rank.
    pub fn log_points(&self, points_per_decade: usize) -> Vec<(usize, f64)> {
        if self.descending.is_empty() {
            return Vec::new();
        }
        let n = self.descending.len();
        let per = points_per_decade.max(1) as f64;
        let mut out: Vec<(usize, f64)> = Vec::new();
        let mut k = 0.0f64;
        loop {
            let rank = (10f64.powf(k / per)).round() as usize;
            if rank > n {
                break;
            }
            if out.last().map(|&(r, _)| r) != Some(rank) {
                out.push((rank, self.descending[rank - 1]));
            }
            k += 1.0;
        }
        if out.last().map(|&(r, _)| r) != Some(n) {
            out.push((n, self.descending[n - 1]));
        }
        out
    }
}

/// A histogram with explicit bin edges (`edges[i] <= x < edges[i+1]`).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bin boundaries; `counts.len() == edges.len() - 1`.
    pub edges: Vec<f64>,
    /// Observation counts per bin (out-of-range values are clamped into the
    /// first/last bin).
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `values` over the given `edges`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are supplied or edges are not strictly
    /// increasing.
    pub fn with_edges(values: &[f64], edges: &[f64]) -> Histogram {
        assert!(edges.len() >= 2, "histogram requires at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let mut counts = vec![0usize; edges.len() - 1];
        for &v in values {
            let idx = if v < edges[0] {
                0
            } else if v >= edges[edges.len() - 1] {
                counts.len() - 1
            } else {
                edges.partition_point(|&e| e <= v) - 1
            };
            counts[idx] += 1;
        }
        Histogram {
            edges: edges.to_vec(),
            counts,
        }
    }

    /// Builds `bins` equal-width bins spanning `[lo, hi)`.
    pub fn linear(values: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "invalid linear histogram parameters");
        let width = (hi - lo) / bins as f64;
        let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
        Histogram::with_edges(values, &edges)
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_odd_median_and_empty() {
        assert_eq!(Summary::of(&[5.0, 1.0, 3.0]).median, 3.0);
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn summary_of_counts_matches_f64() {
        assert_eq!(
            Summary::of_counts(&[1, 2, 3]),
            Summary::of(&[1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::of_counts(&[1, 2, 2, 3, 10]);
        assert!((c.fraction_at_most(2.0) - 0.6).abs() < 1e-12);
        assert!((c.fraction_at_most(0.0) - 0.0).abs() < 1e-12);
        assert!((c.fraction_at_most(10.0) - 1.0).abs() < 1e-12);
        assert!((c.fraction_above(3.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::of_counts(&(1..=100).collect::<Vec<_>>());
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(Cdf::of(&[]).quantile(0.5), 0.0);
    }

    #[test]
    fn cdf_plot_points_monotone_and_bounded() {
        let values: Vec<usize> = (0..1000).map(|i| i % 97).collect();
        let c = Cdf::of_counts(&values);
        let pts = c.plot_points(20);
        assert!(pts.len() <= 21);
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((pts.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rank_curve_ordering_and_queries() {
        let r = RankCurve::of_counts(&[5, 100, 1, 7]);
        assert_eq!(r.at_rank(1), Some(100.0));
        assert_eq!(r.at_rank(4), Some(1.0));
        assert_eq!(r.at_rank(5), None);
        assert_eq!(r.at_rank(0), None);
        assert_eq!(r.count_at_least(7.0), 2);
        assert_eq!(r.count_at_least(0.5), 4);
    }

    #[test]
    fn rank_curve_log_points() {
        let values: Vec<usize> = (1..=10_000).collect();
        let r = RankCurve::of_counts(&values);
        let pts = r.log_points(5);
        assert_eq!(pts.first().unwrap().0, 1);
        assert_eq!(pts.last().unwrap().0, 10_000);
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn histogram_binning() {
        let h = Histogram::linear(&[0.5, 1.5, 2.5, 2.6, 99.0, -3.0], 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![2, 1, 3]); // -3 clamps into first, 99 into last
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        Histogram::with_edges(&[1.0], &[0.0, 0.0]);
    }
}
