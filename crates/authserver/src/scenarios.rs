//! Hand-built scenario universes from the paper.
//!
//! * [`cornell_figure1`] — the delegation web of Figure 1: Cornell's
//!   `cs.cornell.edu` slaved at Rochester, Rochester's zones slaved at
//!   Cornell and Wisconsin, Wisconsin's at Michigan — mutual trust cycles
//!   included.
//! * [`fbi_case`] — the §3.2 case study: `fbi.gov` served by
//!   `sprintip.com`, which is served by `telemail.net`, where
//!   `reston-ns2.telemail.net` runs BIND 8.2.4 with four known exploits.
//!
//! Each scenario yields the zone registry (the namespace), the server specs
//! (the infrastructure), and the root hints, ready for
//! [`crate::deploy::deploy`].

use crate::deploy::ServerSpec;
use crate::software::ServerSoftware;
use perils_dns::name::{name, DnsName};
use perils_dns::rr::RData;
use perils_dns::zone::{Zone, ZoneRegistry};
use std::net::Ipv4Addr;

/// A fully specified scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// All zones.
    pub registry: ZoneRegistry,
    /// All servers.
    pub specs: Vec<ServerSpec>,
    /// Root hints for resolvers.
    pub roots: Vec<(DnsName, Ipv4Addr)>,
}

/// Builder helpers shared by the scenarios.
struct Builder {
    registry: ZoneRegistry,
    specs: Vec<ServerSpec>,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            registry: ZoneRegistry::new(),
            specs: Vec::new(),
        }
    }

    fn zone(&mut self, origin: &str, primary: &str, build: impl FnOnce(&mut Zone)) {
        let origin = if origin == "." {
            DnsName::root()
        } else {
            name(origin)
        };
        let mut zone = Zone::synthetic(origin, name(primary));
        build(&mut zone);
        self.registry.insert(zone);
    }

    fn server(&mut self, host: &str, addr: &str, version: &str, zones: &[&str]) {
        self.specs.push(ServerSpec {
            host_name: name(host),
            addr: addr.parse().expect("static address"),
            software: ServerSoftware::bind(version),
            zones: zones
                .iter()
                .map(|z| if *z == "." { DnsName::root() } else { name(z) })
                .collect(),
        });
    }
}

fn ns(zone: &mut Zone, owner: &str, host: &str) {
    let owner = if owner == "." {
        DnsName::root()
    } else {
        name(owner)
    };
    zone.add_rdata(owner, RData::Ns(name(host)))
        .expect("scenario NS record");
}

fn a(zone: &mut Zone, owner: &str, addr: &str) {
    zone.add_rdata(name(owner), RData::A(addr.parse().expect("static address")))
        .expect("scenario A record");
}

/// The Figure 1 universe (simplified to its load-bearing edges).
///
/// Key structure:
/// * `cs.cornell.edu` is served by `simon.cs.cornell.edu` (glued) **and**
///   `cayuga.cs.rochester.edu` (off-site, glueless from Cornell's view);
/// * `rochester.edu` is served by `ns1.rochester.edu` and
///   `simon.cs.cornell.edu` — a **mutual-trust cycle** with Cornell;
/// * `cs.wisc.edu` serves as off-site secondary for `cs.rochester.edu`,
///   and `wisc.edu` depends on `itd.umich.edu`, extending the transitive
///   chain exactly as the paper describes ("cornell.edu depends on
///   rochester.edu, which depends on wisc.edu, which in turn depends on
///   umich.edu").
pub fn cornell_figure1() -> Scenario {
    let mut b = Builder::new();

    // --- root and TLD infrastructure ---
    b.zone(".", "a.root-servers.net", |z| {
        ns(z, ".", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
        // TLD delegations with glue.
        ns(z, "edu", "a.edu-servers.net");
        a(z, "a.edu-servers.net", "2.0.0.1");
        ns(z, "net", "a.gtld-servers.net");
        a(z, "a.gtld-servers.net", "2.0.0.2");
    });
    b.zone("net", "a.gtld-servers.net", |z| {
        ns(z, "net", "a.gtld-servers.net");
        // Self-referential hosting broken by glue, as in the real net zone.
        ns(z, "gtld-servers.net", "a.gtld-servers.net");
        a(z, "a.gtld-servers.net", "2.0.0.2");
        ns(z, "edu-servers.net", "a.edu-servers.net");
        a(z, "a.edu-servers.net", "2.0.0.1");
        ns(z, "root-servers.net", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
    });
    b.zone("gtld-servers.net", "a.gtld-servers.net", |z| {
        ns(z, "gtld-servers.net", "a.gtld-servers.net");
        a(z, "a.gtld-servers.net", "2.0.0.2");
    });
    b.zone("edu-servers.net", "a.edu-servers.net", |z| {
        ns(z, "edu-servers.net", "a.edu-servers.net");
        a(z, "a.edu-servers.net", "2.0.0.1");
    });
    b.zone("root-servers.net", "a.root-servers.net", |z| {
        ns(z, "root-servers.net", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
    });
    b.zone("edu", "a.edu-servers.net", |z| {
        ns(z, "edu", "a.edu-servers.net");
        // cornell.edu: glued.
        ns(z, "cornell.edu", "cudns.cit.cornell.edu");
        a(z, "cudns.cit.cornell.edu", "3.0.0.1");
        // rochester.edu: one glued NS, one glueless off-site secondary at
        // Cornell (the cycle edge).
        ns(z, "rochester.edu", "ns1.rochester.edu");
        ns(z, "rochester.edu", "simon.cs.cornell.edu");
        a(z, "ns1.rochester.edu", "4.0.0.1");
        // wisc.edu: one glued NS plus a glueless secondary at Michigan.
        ns(z, "wisc.edu", "dns.wisc.edu");
        ns(z, "wisc.edu", "dns2.itd.umich.edu");
        a(z, "dns.wisc.edu", "5.0.0.1");
        // umich.edu: glued.
        ns(z, "umich.edu", "dns.itd.umich.edu");
        a(z, "dns.itd.umich.edu", "6.0.0.1");
    });

    // --- cornell ---
    b.zone("cornell.edu", "cudns.cit.cornell.edu", |z| {
        ns(z, "cornell.edu", "cudns.cit.cornell.edu");
        a(z, "cudns.cit.cornell.edu", "3.0.0.1");
        a(z, "www.cornell.edu", "3.0.0.80");
        // cs.cornell.edu: simon glued; cayuga off-site and glueless.
        ns(z, "cs.cornell.edu", "simon.cs.cornell.edu");
        ns(z, "cs.cornell.edu", "cayuga.cs.rochester.edu");
        a(z, "simon.cs.cornell.edu", "3.0.0.2");
    });
    b.zone("cs.cornell.edu", "simon.cs.cornell.edu", |z| {
        ns(z, "cs.cornell.edu", "simon.cs.cornell.edu");
        ns(z, "cs.cornell.edu", "cayuga.cs.rochester.edu");
        a(z, "simon.cs.cornell.edu", "3.0.0.2");
        a(z, "www.cs.cornell.edu", "3.0.0.88");
        z.add_rdata(
            name("web.cs.cornell.edu"),
            RData::Cname(name("www.cs.cornell.edu")),
        )
        .expect("scenario CNAME");
    });

    // --- rochester (cycle with cornell; leans on wisc) ---
    b.zone("rochester.edu", "ns1.rochester.edu", |z| {
        ns(z, "rochester.edu", "ns1.rochester.edu");
        ns(z, "rochester.edu", "simon.cs.cornell.edu");
        a(z, "ns1.rochester.edu", "4.0.0.1");
        // cs.rochester.edu: cayuga/slate glued, plus an off-site glueless
        // secondary at Wisconsin.
        ns(z, "cs.rochester.edu", "cayuga.cs.rochester.edu");
        ns(z, "cs.rochester.edu", "slate.cs.rochester.edu");
        ns(z, "cs.rochester.edu", "dns.cs.wisc.edu");
        a(z, "cayuga.cs.rochester.edu", "4.0.0.2");
        a(z, "slate.cs.rochester.edu", "4.0.0.3");
    });
    b.zone("cs.rochester.edu", "cayuga.cs.rochester.edu", |z| {
        ns(z, "cs.rochester.edu", "cayuga.cs.rochester.edu");
        ns(z, "cs.rochester.edu", "slate.cs.rochester.edu");
        ns(z, "cs.rochester.edu", "dns.cs.wisc.edu");
        a(z, "cayuga.cs.rochester.edu", "4.0.0.2");
        a(z, "slate.cs.rochester.edu", "4.0.0.3");
    });

    // --- wisconsin (leans on michigan) ---
    b.zone("wisc.edu", "dns.wisc.edu", |z| {
        ns(z, "wisc.edu", "dns.wisc.edu");
        ns(z, "wisc.edu", "dns2.itd.umich.edu");
        a(z, "dns.wisc.edu", "5.0.0.1");
        ns(z, "cs.wisc.edu", "dns.cs.wisc.edu");
        a(z, "dns.cs.wisc.edu", "5.0.0.2");
    });
    b.zone("cs.wisc.edu", "dns.cs.wisc.edu", |z| {
        ns(z, "cs.wisc.edu", "dns.cs.wisc.edu");
        a(z, "dns.cs.wisc.edu", "5.0.0.2");
    });

    // --- michigan ---
    b.zone("umich.edu", "dns.itd.umich.edu", |z| {
        ns(z, "umich.edu", "dns.itd.umich.edu");
        a(z, "dns.itd.umich.edu", "6.0.0.1");
        a(z, "dns2.itd.umich.edu", "6.0.0.2");
    });

    // --- servers ---
    b.server(
        "a.root-servers.net",
        "1.0.0.1",
        "9.2.3",
        &[".", "root-servers.net"],
    );
    b.server(
        "a.gtld-servers.net",
        "2.0.0.2",
        "9.2.3",
        &["net", "gtld-servers.net"],
    );
    b.server(
        "a.edu-servers.net",
        "2.0.0.1",
        "9.2.3",
        &["edu", "edu-servers.net"],
    );
    b.server(
        "cudns.cit.cornell.edu",
        "3.0.0.1",
        "9.2.2",
        &["cornell.edu"],
    );
    b.server(
        "simon.cs.cornell.edu",
        "3.0.0.2",
        "9.2.3",
        &["cs.cornell.edu", "rochester.edu"],
    );
    b.server("ns1.rochester.edu", "4.0.0.1", "8.4.4", &["rochester.edu"]);
    b.server(
        "cayuga.cs.rochester.edu",
        "4.0.0.2",
        "8.2.4",
        &["cs.rochester.edu", "cs.cornell.edu"],
    );
    b.server(
        "slate.cs.rochester.edu",
        "4.0.0.3",
        "9.2.1",
        &["cs.rochester.edu"],
    );
    b.server("dns.wisc.edu", "5.0.0.1", "9.2.3", &["wisc.edu"]);
    b.server(
        "dns.cs.wisc.edu",
        "5.0.0.2",
        "8.2.2-P5",
        &["cs.wisc.edu", "cs.rochester.edu"],
    );
    b.server("dns.itd.umich.edu", "6.0.0.1", "9.2.3", &["umich.edu"]);
    b.server(
        "dns2.itd.umich.edu",
        "6.0.0.2",
        "9.2.3",
        &["umich.edu", "wisc.edu"],
    );

    Scenario {
        registry: b.registry,
        specs: b.specs,
        roots: vec![(name("a.root-servers.net"), "1.0.0.1".parse().unwrap())],
    }
}

/// The fbi.gov case study (§3.2).
///
/// `fbi.gov` is served by `dns.sprintip.com` and `dns2.sprintip.com`;
/// `sprintip.com` is served by `reston-ns{1,2,3}.telemail.net`, of which
/// `reston-ns2` runs BIND 8.2.4 — the four-exploit box the paper describes
/// compromising to divert `dns.sprintip.com` and thereby hijack
/// `www.fbi.gov`.
pub fn fbi_case() -> Scenario {
    let mut b = Builder::new();

    b.zone(".", "a.root-servers.net", |z| {
        ns(z, ".", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
        ns(z, "gov", "a.gov-servers.net");
        a(z, "a.gov-servers.net", "2.0.1.1");
        ns(z, "com", "a.gtld-servers.net");
        a(z, "a.gtld-servers.net", "2.0.0.2");
        ns(z, "net", "a.gtld-servers.net");
    });
    b.zone("gov", "a.gov-servers.net", |z| {
        ns(z, "gov", "a.gov-servers.net");
        // fbi.gov delegated to Sprint-operated servers: glueless (names
        // under .com) — the transitive step.
        ns(z, "fbi.gov", "dns.sprintip.com");
        ns(z, "fbi.gov", "dns2.sprintip.com");
        // usdoj.gov: one live glued NS plus a stale record pointing into
        // an unmodeled namespace — the lame delegation the survey found
        // everywhere. Off www.fbi.gov's dependency chain by design.
        ns(z, "usdoj.gov", "ns1.usdoj.gov");
        a(z, "ns1.usdoj.gov", "2.0.2.1");
        ns(z, "usdoj.gov", "ns.usdoj-archive.zz");
        // fedworld.gov: the registry still carries the cut, but the child
        // zone itself is long gone — its NS glue is orphaned.
        ns(z, "fedworld.gov", "ns.fedworld.zz");
    });
    b.zone("com", "a.gtld-servers.net", |z| {
        ns(z, "com", "a.gtld-servers.net");
        // sprintip.com delegated to telemail.net servers: glueless again.
        ns(z, "sprintip.com", "reston-ns1.telemail.net");
        ns(z, "sprintip.com", "reston-ns2.telemail.net");
        ns(z, "sprintip.com", "reston-ns3.telemail.net");
    });
    b.zone("net", "a.gtld-servers.net", |z| {
        ns(z, "net", "a.gtld-servers.net");
        a(z, "a.gtld-servers.net", "2.0.0.2");
        ns(z, "telemail.net", "reston-ns1.telemail.net");
        ns(z, "telemail.net", "reston-ns2.telemail.net");
        a(z, "reston-ns1.telemail.net", "7.0.0.1");
        a(z, "reston-ns2.telemail.net", "7.0.0.2");
        ns(z, "gov-servers.net", "a.gov-servers.net");
        a(z, "a.gov-servers.net", "2.0.1.1");
        ns(z, "root-servers.net", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
    });
    b.zone("gov-servers.net", "a.gov-servers.net", |z| {
        ns(z, "gov-servers.net", "a.gov-servers.net");
        a(z, "a.gov-servers.net", "2.0.1.1");
    });
    b.zone("root-servers.net", "a.root-servers.net", |z| {
        ns(z, "root-servers.net", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
    });
    b.zone("fbi.gov", "dns.sprintip.com", |z| {
        ns(z, "fbi.gov", "dns.sprintip.com");
        ns(z, "fbi.gov", "dns2.sprintip.com");
        a(z, "www.fbi.gov", "8.0.0.80");
    });
    b.zone("sprintip.com", "reston-ns1.telemail.net", |z| {
        ns(z, "sprintip.com", "reston-ns1.telemail.net");
        ns(z, "sprintip.com", "reston-ns2.telemail.net");
        ns(z, "sprintip.com", "reston-ns3.telemail.net");
        a(z, "dns.sprintip.com", "9.0.0.1");
        a(z, "dns2.sprintip.com", "9.0.0.2");
    });
    b.zone("telemail.net", "reston-ns1.telemail.net", |z| {
        ns(z, "telemail.net", "reston-ns1.telemail.net");
        ns(z, "telemail.net", "reston-ns2.telemail.net");
        a(z, "reston-ns1.telemail.net", "7.0.0.1");
        a(z, "reston-ns2.telemail.net", "7.0.0.2");
        a(z, "reston-ns3.telemail.net", "7.0.0.3");
    });
    b.zone("usdoj.gov", "ns1.usdoj.gov", |z| {
        ns(z, "usdoj.gov", "ns1.usdoj.gov");
        a(z, "ns1.usdoj.gov", "2.0.2.1");
        a(z, "www.usdoj.gov", "8.0.1.80");
    });

    b.server(
        "a.root-servers.net",
        "1.0.0.1",
        "9.2.3",
        &[".", "root-servers.net"],
    );
    b.server("a.gtld-servers.net", "2.0.0.2", "9.2.3", &["com", "net"]);
    b.server(
        "a.gov-servers.net",
        "2.0.1.1",
        "9.2.3",
        &["gov", "gov-servers.net"],
    );
    b.server(
        "dns.sprintip.com",
        "9.0.0.1",
        "9.2.2",
        &["fbi.gov", "sprintip.com"],
    );
    b.server("dns2.sprintip.com", "9.0.0.2", "9.2.2", &["fbi.gov"]);
    b.server(
        "reston-ns1.telemail.net",
        "7.0.0.1",
        "9.2.2",
        &["telemail.net", "sprintip.com"],
    );
    // The paper's vulnerable box: BIND 8.2.4 with libbind, negcache,
    // sigrec and DoS multi.
    b.server(
        "reston-ns2.telemail.net",
        "7.0.0.2",
        "8.2.4",
        &["telemail.net", "sprintip.com"],
    );
    b.server(
        "reston-ns3.telemail.net",
        "7.0.0.3",
        "9.2.2",
        &["sprintip.com"],
    );
    b.server("ns1.usdoj.gov", "2.0.2.1", "9.2.3", &["usdoj.gov"]);

    Scenario {
        registry: b.registry,
        specs: b.specs,
        roots: vec![(name("a.root-servers.net"), "1.0.0.1".parse().unwrap())],
    }
}

/// A deliberately pathological universe that trips every built-in lint
/// rule at least once — the lint engine's golden fixture.
///
/// Under a healthy root and a two-server `test` TLD:
///
/// * `solo.test` — one NS (`single-server`);
/// * `corr.test` — both NS under `prov.test` (`single-operator`);
/// * `dangling.test` — one live NS plus a dead `.zz` host
///   (`lame-delegation`);
/// * `x.test` ↔ `y.test` — mutually glueless, unbootstrappable
///   (`glueless-cycle`);
/// * `stale.test` — every NS dead (`zombie-ns`);
/// * `deep0.test → deep1 → deep2 → deep3` — a glueless chain three
///   levels deep (`deep-chain` on `www.deep0.test`);
/// * `fat.test → bloat1 → … → bloat4` — one delegated NS dragging in a
///   five-server closure (`tcb-inflation` on `www.fat.test`);
/// * `choke.test` — a single glued NS every path crosses
///   (`choke-point` on `www.choke.test`);
/// * a `ghostchild.test` cut whose child zone no longer exists
///   (`orphaned-glue` on `ns.ghostchild-legacy.zz`).
///
/// Not part of the healthy-scenario test lists: this universe is *meant*
/// to be broken.
pub fn lint_tripwire() -> Scenario {
    let mut b = Builder::new();

    b.zone(".", "a.root-servers.net", |z| {
        ns(z, ".", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
        ns(z, "test", "ns1.test");
        ns(z, "test", "ns2.test");
        a(z, "ns1.test", "2.0.0.1");
        a(z, "ns2.test", "2.0.0.2");
        ns(z, "root-servers.net", "a.root-servers.net");
    });
    b.zone("test", "ns1.test", |z| {
        ns(z, "test", "ns1.test");
        ns(z, "test", "ns2.test");
        a(z, "ns1.test", "2.0.0.1");
        a(z, "ns2.test", "2.0.0.2");
        // One pathology per delegation, each glued where the rule needs
        // the zone alive and glueless where it needs it broken.
        ns(z, "solo.test", "ns1.solo.test");
        a(z, "ns1.solo.test", "3.0.0.1");
        ns(z, "corr.test", "ns1.prov.test");
        ns(z, "corr.test", "ns2.prov.test");
        ns(z, "prov.test", "ns1.prov.test");
        ns(z, "prov.test", "ns2.prov.test");
        a(z, "ns1.prov.test", "3.0.1.1");
        a(z, "ns2.prov.test", "3.0.1.2");
        ns(z, "dangling.test", "ns1.dangling.test");
        ns(z, "dangling.test", "ns.ghost.zz");
        a(z, "ns1.dangling.test", "3.0.2.1");
        ns(z, "x.test", "ns.y.test");
        ns(z, "y.test", "ns.x.test");
        ns(z, "stale.test", "ns1.gone.zz");
        ns(z, "stale.test", "ns2.gone.zz");
        ns(z, "deep0.test", "ns.deep1.test");
        ns(z, "deep1.test", "ns.deep2.test");
        ns(z, "deep2.test", "ns.deep3.test");
        ns(z, "deep3.test", "ns.deep3.test");
        a(z, "ns.deep3.test", "3.0.3.1");
        ns(z, "fat.test", "ns.bloat1.test");
        ns(z, "bloat1.test", "ns.bloat2.test");
        ns(z, "bloat2.test", "ns.bloat3.test");
        ns(z, "bloat3.test", "ns.bloat4.test");
        ns(z, "bloat4.test", "ns.bloat4.test");
        a(z, "ns.bloat4.test", "3.0.4.1");
        ns(z, "choke.test", "ns1.choke.test");
        a(z, "ns1.choke.test", "3.0.5.1");
        // The orphan: a cut whose child zone has vanished.
        ns(z, "ghostchild.test", "ns.ghostchild-legacy.zz");
    });
    b.zone("root-servers.net", "a.root-servers.net", |z| {
        ns(z, "root-servers.net", "a.root-servers.net");
        a(z, "a.root-servers.net", "1.0.0.1");
    });
    b.zone("solo.test", "ns1.solo.test", |z| {
        ns(z, "solo.test", "ns1.solo.test");
        a(z, "ns1.solo.test", "3.0.0.1");
        a(z, "www.solo.test", "4.0.0.80");
    });
    b.zone("corr.test", "ns1.prov.test", |z| {
        ns(z, "corr.test", "ns1.prov.test");
        ns(z, "corr.test", "ns2.prov.test");
        a(z, "www.corr.test", "4.0.1.80");
    });
    b.zone("prov.test", "ns1.prov.test", |z| {
        ns(z, "prov.test", "ns1.prov.test");
        ns(z, "prov.test", "ns2.prov.test");
        a(z, "ns1.prov.test", "3.0.1.1");
        a(z, "ns2.prov.test", "3.0.1.2");
    });
    b.zone("dangling.test", "ns1.dangling.test", |z| {
        ns(z, "dangling.test", "ns1.dangling.test");
        ns(z, "dangling.test", "ns.ghost.zz");
        a(z, "ns1.dangling.test", "3.0.2.1");
        a(z, "www.dangling.test", "4.0.2.80");
    });
    b.zone("x.test", "ns.y.test", |z| {
        ns(z, "x.test", "ns.y.test");
        a(z, "www.x.test", "4.0.3.80");
    });
    b.zone("y.test", "ns.x.test", |z| {
        ns(z, "y.test", "ns.x.test");
    });
    b.zone("stale.test", "ns1.gone.zz", |z| {
        ns(z, "stale.test", "ns1.gone.zz");
        ns(z, "stale.test", "ns2.gone.zz");
        a(z, "www.stale.test", "4.0.4.80");
    });
    b.zone("deep0.test", "ns.deep1.test", |z| {
        ns(z, "deep0.test", "ns.deep1.test");
        a(z, "www.deep0.test", "4.0.5.80");
    });
    b.zone("deep1.test", "ns.deep2.test", |z| {
        ns(z, "deep1.test", "ns.deep2.test");
    });
    b.zone("deep2.test", "ns.deep3.test", |z| {
        ns(z, "deep2.test", "ns.deep3.test");
    });
    b.zone("deep3.test", "ns.deep3.test", |z| {
        ns(z, "deep3.test", "ns.deep3.test");
        a(z, "ns.deep3.test", "3.0.3.1");
    });
    b.zone("fat.test", "ns.bloat1.test", |z| {
        ns(z, "fat.test", "ns.bloat1.test");
        a(z, "www.fat.test", "4.0.6.80");
    });
    b.zone("bloat1.test", "ns.bloat2.test", |z| {
        ns(z, "bloat1.test", "ns.bloat2.test");
    });
    b.zone("bloat2.test", "ns.bloat3.test", |z| {
        ns(z, "bloat2.test", "ns.bloat3.test");
    });
    b.zone("bloat3.test", "ns.bloat4.test", |z| {
        ns(z, "bloat3.test", "ns.bloat4.test");
    });
    b.zone("bloat4.test", "ns.bloat4.test", |z| {
        ns(z, "bloat4.test", "ns.bloat4.test");
        a(z, "ns.bloat4.test", "3.0.4.1");
    });
    b.zone("choke.test", "ns1.choke.test", |z| {
        ns(z, "choke.test", "ns1.choke.test");
        a(z, "ns1.choke.test", "3.0.5.1");
        a(z, "www.choke.test", "4.0.7.80");
    });

    b.server(
        "a.root-servers.net",
        "1.0.0.1",
        "9.2.3",
        &[".", "root-servers.net"],
    );
    b.server("ns1.test", "2.0.0.1", "9.2.3", &["test"]);
    b.server("ns2.test", "2.0.0.2", "9.2.3", &["test"]);
    b.server("ns1.solo.test", "3.0.0.1", "9.2.3", &["solo.test"]);
    b.server(
        "ns1.prov.test",
        "3.0.1.1",
        "9.2.3",
        &["corr.test", "prov.test"],
    );
    b.server(
        "ns2.prov.test",
        "3.0.1.2",
        "9.2.3",
        &["corr.test", "prov.test"],
    );
    b.server("ns1.dangling.test", "3.0.2.1", "8.2.4", &["dangling.test"]);
    b.server("ns.deep1.test", "3.0.3.2", "9.2.3", &["deep0.test"]);
    b.server("ns.deep2.test", "3.0.3.3", "9.2.3", &["deep1.test"]);
    b.server(
        "ns.deep3.test",
        "3.0.3.1",
        "9.2.3",
        &["deep2.test", "deep3.test"],
    );
    b.server("ns.bloat1.test", "3.0.4.2", "9.2.3", &["fat.test"]);
    b.server("ns.bloat2.test", "3.0.4.3", "9.2.3", &["bloat1.test"]);
    b.server("ns.bloat3.test", "3.0.4.4", "9.2.3", &["bloat2.test"]);
    b.server(
        "ns.bloat4.test",
        "3.0.4.1",
        "9.2.3",
        &["bloat3.test", "bloat4.test"],
    );
    b.server("ns1.choke.test", "3.0.5.1", "9.2.3", &["choke.test"]);

    Scenario {
        registry: b.registry,
        specs: b.specs,
        roots: vec![(name("a.root-servers.net"), "1.0.0.1".parse().unwrap())],
    }
}

/// The survey targets the lint goldens check `lint_tripwire` against:
/// one name per pathology family.
pub fn lint_tripwire_targets() -> Vec<DnsName> {
    [
        "www.solo.test",
        "www.corr.test",
        "www.dangling.test",
        "www.x.test",
        "www.stale.test",
        "www.deep0.test",
        "www.fat.test",
        "www.choke.test",
    ]
    .iter()
    .map(|n| name(n))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use perils_netsim::{FaultPlan, Region, SimNet};

    #[test]
    fn scenarios_deploy_cleanly() {
        for scenario in [cornell_figure1(), fbi_case()] {
            let net = SimNet::new(1, FaultPlan::none(), Region(0));
            deploy(&net, &scenario.registry, &scenario.specs).expect("scenario deploys");
            assert!(net.endpoint_count() >= 8);
            assert!(!scenario.roots.is_empty());
        }
    }

    #[test]
    fn every_spec_zone_exists() {
        for scenario in [cornell_figure1(), fbi_case()] {
            for spec in &scenario.specs {
                for zone in &spec.zones {
                    assert!(
                        scenario.registry.get(zone).is_some(),
                        "zone {zone} of {} missing",
                        spec.host_name
                    );
                }
            }
        }
    }

    #[test]
    fn every_apex_ns_has_a_server_spec() {
        for scenario in [cornell_figure1(), fbi_case()] {
            let hosts: std::collections::BTreeSet<&DnsName> =
                scenario.specs.iter().map(|s| &s.host_name).collect();
            for zone in scenario.registry.iter() {
                for ns in zone.apex_ns_names() {
                    assert!(
                        hosts.contains(&ns),
                        "no server spec for {ns} (zone {})",
                        zone.origin()
                    );
                }
            }
        }
    }
}
