//! An authoritative DNS nameserver over the simulated internet.
//!
//! Implements the server side of RFC 1034 §4.3.2: zone selection, exact and
//! wildcard answers, CNAME chasing within local authority, referrals with
//! glue at zone cuts, NXDOMAIN/NODATA with SOA, and REFUSED for names the
//! server is not authoritative for (which is how lame delegations surface).
//!
//! Servers also answer (or refuse) the CHAOS-class `version.bind.` TXT
//! query according to their [`BannerPolicy`] — the fingerprinting channel
//! the paper's survey used to find 27k vulnerable servers.

#![forbid(unsafe_code)]

pub mod deploy;
pub mod scenarios;
pub mod server;
pub mod software;

pub use deploy::{deploy, DeployError, ServerSpec};
pub use scenarios::Scenario;
pub use server::AuthServer;
pub use software::{BannerPolicy, ServerSoftware};
