//! The authoritative server: RFC 1034 §4.3.2 query processing.

use crate::software::ServerSoftware;
use perils_dns::message::{Message, Question, Rcode};
use perils_dns::name::DnsName;
use perils_dns::rr::{RData, Record, RrClass, RrType};
use perils_dns::zone::{Zone, ZoneLookup};
use perils_netsim::Endpoint;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Maximum CNAME links chased inside one response.
const MAX_CNAME_CHAIN: usize = 8;

/// An authoritative nameserver instance.
///
/// A server hosts zero or more zones (zero models a decommissioned or
/// misconfigured box that answers REFUSED to everything — a lame server).
pub struct AuthServer {
    host_name: DnsName,
    addr: Ipv4Addr,
    software: ServerSoftware,
    /// Hosted zones, shared with whoever built the universe.
    zones: Vec<Arc<Zone>>,
}

impl AuthServer {
    /// Creates a server with no zones.
    pub fn new(host_name: DnsName, addr: Ipv4Addr, software: ServerSoftware) -> AuthServer {
        AuthServer {
            host_name,
            addr,
            software,
            zones: Vec::new(),
        }
    }

    /// Adds a hosted zone (builder style).
    pub fn with_zone(mut self, zone: Arc<Zone>) -> AuthServer {
        self.zones.push(zone);
        self
    }

    /// Adds a hosted zone.
    pub fn add_zone(&mut self, zone: Arc<Zone>) {
        self.zones.push(zone);
    }

    /// The server's host name.
    pub fn host_name(&self) -> &DnsName {
        &self.host_name
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The software this server runs.
    pub fn software(&self) -> &ServerSoftware {
        &self.software
    }

    /// Origins of hosted zones.
    pub fn zone_origins(&self) -> impl Iterator<Item = &DnsName> {
        self.zones.iter().map(|z| z.origin())
    }

    /// The deepest hosted zone enclosing `name`.
    fn zone_for(&self, name: &DnsName) -> Option<&Arc<Zone>> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    /// Processes one query, producing the full response message.
    pub fn respond(&self, query: &Message) -> Message {
        let mut response = Message::response_to(query);
        let Some(question) = query.question().cloned() else {
            response.rcode = Rcode::FormErr;
            return response;
        };
        match question.qclass {
            RrClass::Ch => self.respond_chaos(&question, response),
            RrClass::In | RrClass::Any => self.respond_in(&question, response),
            RrClass::Unknown(_) => {
                response.rcode = Rcode::NotImp;
                response
            }
        }
    }

    /// CHAOS class: `version.bind` probes.
    fn respond_chaos(&self, question: &Question, mut response: Message) -> Message {
        let is_version_bind = question.qtype == RrType::Txt
            && question.name == DnsName::from_ascii("version.bind").expect("static");
        if !is_version_bind {
            response.rcode = Rcode::Refused;
            return response;
        }
        match self.software.banner() {
            Some(banner) => {
                response.flags.aa = true;
                response.answers.push(Record::version_banner(&banner));
            }
            None => response.rcode = Rcode::Refused,
        }
        response
    }

    /// IN class: authoritative data.
    fn respond_in(&self, question: &Question, mut response: Message) -> Message {
        let Some(zone) = self.zone_for(&question.name) else {
            // Not authoritative and recursion is not offered.
            response.rcode = Rcode::Refused;
            return response;
        };
        let mut current_zone = zone;
        let mut current_name = question.name.clone();
        for _ in 0..MAX_CNAME_CHAIN {
            match current_zone.lookup(&current_name, question.qtype) {
                ZoneLookup::Answer(records) => {
                    response.flags.aa = true;
                    response.answers.extend(records);
                    // Attach apex NS in authority for completeness.
                    self.attach_authority_ns(current_zone, &mut response);
                    return response;
                }
                ZoneLookup::Cname { record, target } => {
                    response.flags.aa = true;
                    response.answers.push(record);
                    // Chase the target while we are authoritative for it.
                    match self.zone_for(&target) {
                        Some(next_zone) => {
                            current_zone = next_zone;
                            current_name = target;
                        }
                        None => return response,
                    }
                }
                ZoneLookup::Referral {
                    ns_records, glue, ..
                } => {
                    response.flags.aa = false;
                    response.authority.extend(ns_records);
                    response.additional.extend(glue);
                    return response;
                }
                ZoneLookup::NoData => {
                    response.flags.aa = true;
                    self.attach_soa(current_zone, &mut response);
                    return response;
                }
                ZoneLookup::NxDomain => {
                    response.flags.aa = true;
                    response.rcode = Rcode::NxDomain;
                    self.attach_soa(current_zone, &mut response);
                    return response;
                }
            }
        }
        // CNAME chain too long.
        response.rcode = Rcode::ServFail;
        response
    }

    fn attach_soa(&self, zone: &Zone, response: &mut Message) {
        response.authority.push(Record::new(
            zone.origin().clone(),
            zone.soa().minimum,
            RData::Soa(zone.soa().clone()),
        ));
    }

    fn attach_authority_ns(&self, zone: &Zone, response: &mut Message) {
        if let ZoneLookup::Answer(ns) = zone.lookup(zone.origin(), RrType::Ns) {
            // Skip when the answer section already holds these (NS query at
            // the apex).
            if response.answers.iter().any(|r| r.rtype == RrType::Ns) {
                return;
            }
            response.authority.extend(ns);
        }
    }
}

impl Endpoint for AuthServer {
    fn handle(&self, query: &Message) -> Option<Message> {
        Some(self.respond(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;
    use perils_dns::rr::Soa;

    fn example_server() -> AuthServer {
        let mut zone = Zone::new(
            name("example.com"),
            Soa::synthetic(name("ns1.example.com"), 1),
        );
        zone.add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        zone.add_rdata(
            name("ns1.example.com"),
            RData::A("10.0.0.1".parse().unwrap()),
        )
        .unwrap();
        zone.add_rdata(
            name("www.example.com"),
            RData::A("10.0.0.80".parse().unwrap()),
        )
        .unwrap();
        zone.add_rdata(
            name("web.example.com"),
            RData::Cname(name("www.example.com")),
        )
        .unwrap();
        zone.add_rdata(
            name("sub.example.com"),
            RData::Ns(name("ns.sub.example.com")),
        )
        .unwrap();
        zone.add_rdata(
            name("ns.sub.example.com"),
            RData::A("10.0.1.1".parse().unwrap()),
        )
        .unwrap();
        AuthServer::new(
            name("ns1.example.com"),
            "10.0.0.1".parse().unwrap(),
            ServerSoftware::bind("8.2.4"),
        )
        .with_zone(Arc::new(zone))
    }

    fn ask(server: &AuthServer, qname: &str, qtype: RrType) -> Message {
        server.respond(&Message::query(42, Question::new(name(qname), qtype)))
    }

    #[test]
    fn authoritative_answer() {
        let server = example_server();
        let response = ask(&server, "www.example.com", RrType::A);
        assert!(response.is_authoritative_answer());
        assert_eq!(response.answers.len(), 1);
        assert!(response.authority.iter().any(|r| r.rtype == RrType::Ns));
    }

    #[test]
    fn cname_chased_locally() {
        let server = example_server();
        let response = ask(&server, "web.example.com", RrType::A);
        assert!(response.flags.aa);
        assert_eq!(response.answers.len(), 2, "CNAME plus target A");
        assert_eq!(response.answers[0].rtype, RrType::Cname);
        assert_eq!(response.answers[1].rtype, RrType::A);
    }

    #[test]
    fn referral_with_glue() {
        let server = example_server();
        let response = ask(&server, "deep.sub.example.com", RrType::A);
        assert!(response.is_referral());
        assert!(!response.flags.aa);
        assert_eq!(response.authority[0].name, name("sub.example.com"));
        assert_eq!(response.additional.len(), 1);
    }

    #[test]
    fn nxdomain_and_nodata_carry_soa() {
        let server = example_server();
        let response = ask(&server, "missing.example.com", RrType::A);
        assert_eq!(response.rcode, Rcode::NxDomain);
        assert!(response.authority.iter().any(|r| r.rtype == RrType::Soa));

        let response = ask(&server, "www.example.com", RrType::Mx);
        assert_eq!(response.rcode, Rcode::NoError);
        assert!(response.answers.is_empty());
        assert!(response.authority.iter().any(|r| r.rtype == RrType::Soa));
    }

    #[test]
    fn refused_outside_authority_models_lameness() {
        let server = example_server();
        let response = ask(&server, "www.other.org", RrType::A);
        assert_eq!(response.rcode, Rcode::Refused);
        // A server with no zones refuses everything.
        let lame = AuthServer::new(
            name("lame.example.net"),
            "10.0.0.9".parse().unwrap(),
            ServerSoftware::bind("9.2.3"),
        );
        let response = lame.respond(&Message::query(
            1,
            Question::new(name("x.example.net"), RrType::A),
        ));
        assert_eq!(response.rcode, Rcode::Refused);
    }

    #[test]
    fn version_bind_probe() {
        let server = example_server();
        let response = server.respond(&Message::query(7, Question::version_bind()));
        assert!(response.flags.aa);
        assert_eq!(
            perils_vulndb::fingerprint::banner_from_response(&response),
            Some("8.2.4".to_string())
        );
        // Other CHAOS queries are refused.
        let other = server.respond(&Message::query(
            8,
            Question {
                name: name("hostname.bind"),
                qtype: RrType::Txt,
                qclass: RrClass::Ch,
            },
        ));
        assert_eq!(other.rcode, Rcode::Refused);
    }

    #[test]
    fn banner_refusal() {
        let mut software = ServerSoftware::bind("8.2.4");
        software.banner_policy = crate::software::BannerPolicy::Refuse;
        let server = AuthServer::new(name("ns.hidden.org"), "10.0.0.2".parse().unwrap(), software);
        let response = server.respond(&Message::query(7, Question::version_bind()));
        assert_eq!(response.rcode, Rcode::Refused);
    }

    #[test]
    fn deepest_zone_wins() {
        // Server hosts both example.com and sub.example.com: queries under
        // sub go to the child zone (no referral).
        let mut parent = Zone::new(
            name("example.com"),
            Soa::synthetic(name("ns1.example.com"), 1),
        );
        parent
            .add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        parent
            .add_rdata(name("sub.example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        let mut child = Zone::new(
            name("sub.example.com"),
            Soa::synthetic(name("ns1.example.com"), 1),
        );
        child
            .add_rdata(name("sub.example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        child
            .add_rdata(
                name("www.sub.example.com"),
                RData::A("10.0.2.2".parse().unwrap()),
            )
            .unwrap();
        let server = AuthServer::new(
            name("ns1.example.com"),
            "10.0.0.1".parse().unwrap(),
            ServerSoftware::bind("9.2.3"),
        )
        .with_zone(Arc::new(parent))
        .with_zone(Arc::new(child));
        let response = ask(&server, "www.sub.example.com", RrType::A);
        assert!(
            response.is_authoritative_answer(),
            "child zone answers authoritatively"
        );
    }

    #[test]
    fn formerr_on_empty_question() {
        let server = example_server();
        let mut query = Message::query(1, Question::new(name("x.example.com"), RrType::A));
        query.questions.clear();
        assert_eq!(server.respond(&query).rcode, Rcode::FormErr);
    }
}
