//! Deployment: binding a zone registry onto the simulated internet.
//!
//! A [`ServerSpec`] says which host serves which zones, at which address,
//! running which software. [`deploy`] instantiates the [`AuthServer`]s and
//! binds them into a [`SimNet`] — the step that turns a *namespace*
//! (zones and delegations) into an *infrastructure* (servers that can be
//! compromised, DoS'd, or fingerprinted).

use crate::server::AuthServer;
use crate::software::ServerSoftware;
use perils_dns::name::DnsName;
use perils_dns::zone::ZoneRegistry;
use perils_netsim::SimNet;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One server to deploy.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// The server's host name (should have an A record somewhere in the
    /// registry, or glue at its parent, for the world to reach it).
    pub host_name: DnsName,
    /// Address to bind.
    pub addr: Ipv4Addr,
    /// Software (version + banner policy).
    pub software: ServerSoftware,
    /// Origins of the zones this server hosts. Empty = a lame server.
    pub zones: Vec<DnsName>,
}

/// Deployment failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// A spec referenced a zone origin missing from the registry.
    UnknownZone {
        /// The server being deployed.
        server: DnsName,
        /// The zone it wanted.
        zone: DnsName,
    },
    /// Two specs bound the same address.
    AddressCollision(Ipv4Addr),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::UnknownZone { server, zone } => {
                write!(f, "server {server} hosts unknown zone {zone}")
            }
            DeployError::AddressCollision(addr) => write!(f, "address {addr} bound twice"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Instantiates and binds every server in `specs`.
///
/// Zones are cloned out of the registry and shared (`Arc`) between servers
/// hosting the same zone.
pub fn deploy(
    net: &SimNet,
    registry: &ZoneRegistry,
    specs: &[ServerSpec],
) -> Result<(), DeployError> {
    // Share one Arc per zone across all its servers.
    let mut shared: std::collections::BTreeMap<DnsName, Arc<perils_dns::zone::Zone>> =
        std::collections::BTreeMap::new();
    let mut bound: std::collections::HashSet<Ipv4Addr> = std::collections::HashSet::new();
    for spec in specs {
        if !bound.insert(spec.addr) {
            return Err(DeployError::AddressCollision(spec.addr));
        }
        let mut server = AuthServer::new(spec.host_name.clone(), spec.addr, spec.software.clone());
        for origin in &spec.zones {
            let zone = match shared.get(origin) {
                Some(zone) => zone.clone(),
                None => {
                    let zone = registry
                        .get(origin)
                        .ok_or_else(|| DeployError::UnknownZone {
                            server: spec.host_name.clone(),
                            zone: origin.clone(),
                        })?;
                    let arc = Arc::new(zone.clone());
                    shared.insert(origin.clone(), arc.clone());
                    arc
                }
            };
            server.add_zone(zone);
        }
        net.bind(spec.addr, Arc::new(server));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::message::{Message, Question};
    use perils_dns::name::name;
    use perils_dns::rr::{RData, RrType};
    use perils_dns::zone::Zone;
    use perils_netsim::{FaultPlan, Region};

    fn registry() -> ZoneRegistry {
        let mut reg = ZoneRegistry::new();
        let mut root = Zone::synthetic(DnsName::root(), name("a.root-servers.net"));
        root.add_rdata(DnsName::root(), RData::Ns(name("a.root-servers.net")))
            .unwrap();
        root.add_rdata(
            name("a.root-servers.net"),
            RData::A("1.0.0.1".parse().unwrap()),
        )
        .unwrap();
        reg.insert(root);
        reg
    }

    #[test]
    fn deploy_binds_and_serves() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let specs = [ServerSpec {
            host_name: name("a.root-servers.net"),
            addr: "1.0.0.1".parse().unwrap(),
            software: ServerSoftware::bind("9.2.3"),
            zones: vec![DnsName::root()],
        }];
        deploy(&net, &registry(), &specs).unwrap();
        assert_eq!(net.endpoint_count(), 1);
        let q = Message::query(1, Question::new(name("a.root-servers.net"), RrType::A));
        let response = net.query("1.0.0.1".parse().unwrap(), &q).response.unwrap();
        assert!(response.is_authoritative_answer());
    }

    #[test]
    fn unknown_zone_rejected() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let specs = [ServerSpec {
            host_name: name("ns.missing.test"),
            addr: "1.0.0.2".parse().unwrap(),
            software: ServerSoftware::bind("9.2.3"),
            zones: vec![name("missing.test")],
        }];
        let err = deploy(&net, &registry(), &specs).unwrap_err();
        assert!(matches!(err, DeployError::UnknownZone { .. }));
    }

    #[test]
    fn address_collision_rejected() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let spec = ServerSpec {
            host_name: name("a.root-servers.net"),
            addr: "1.0.0.1".parse().unwrap(),
            software: ServerSoftware::bind("9.2.3"),
            zones: vec![],
        };
        let err = deploy(&net, &registry(), &[spec.clone(), spec]).unwrap_err();
        assert_eq!(
            err,
            DeployError::AddressCollision("1.0.0.1".parse().unwrap())
        );
    }
}
