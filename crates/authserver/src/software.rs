//! Server software identity: the banner a server exposes to
//! `version.bind` probes.

use perils_vulndb::BindVersion;

/// How a server responds to CHAOS `version.bind` queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BannerPolicy {
    /// Answer with the real version string (the common BIND default of the
    /// era — which is what made the paper's survey possible).
    Expose,
    /// Answer with a decoy string (`version "none of your business";`).
    Decoy(String),
    /// Refuse the query outright.
    Refuse,
}

/// The software a simulated server runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSoftware {
    /// The actual BIND version (ground truth for the simulation; what an
    /// assessment *should* find when the banner is exposed).
    pub version: BindVersion,
    /// Banner behaviour.
    pub banner_policy: BannerPolicy,
}

impl ServerSoftware {
    /// A server running `version` with the banner exposed.
    pub fn exposed(version: BindVersion) -> ServerSoftware {
        ServerSoftware {
            version,
            banner_policy: BannerPolicy::Expose,
        }
    }

    /// Parses a version string; panics on invalid input (test/example
    /// convenience).
    pub fn bind(version: &str) -> ServerSoftware {
        ServerSoftware::exposed(
            BindVersion::parse(version)
                .unwrap_or_else(|| panic!("invalid BIND version {version:?}")),
        )
    }

    /// The banner string this server actually sends, or `None` when it
    /// refuses.
    pub fn banner(&self) -> Option<String> {
        match &self.banner_policy {
            BannerPolicy::Expose => Some(format!("{}", self.version)),
            BannerPolicy::Decoy(text) => Some(text.clone()),
            BannerPolicy::Refuse => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposed_banner_is_version() {
        let s = ServerSoftware::bind("8.2.4");
        assert_eq!(s.banner(), Some("8.2.4".to_string()));
    }

    #[test]
    fn decoy_and_refuse() {
        let mut s = ServerSoftware::bind("9.2.3");
        s.banner_policy = BannerPolicy::Decoy("surely you must be joking".into());
        assert_eq!(s.banner(), Some("surely you must be joking".to_string()));
        s.banner_policy = BannerPolicy::Refuse;
        assert_eq!(s.banner(), None);
    }

    #[test]
    #[should_panic(expected = "invalid BIND version")]
    fn bad_version_panics() {
        ServerSoftware::bind("not-a-version");
    }
}
