//! Compressed sparse row (CSR) adjacency.
//!
//! The survey's dependency graph is built once and then only read, which is
//! exactly the shape CSR is for: one `offsets` array and one flat `targets`
//! array, so a node's out-neighbors are a contiguous slice with no
//! per-node allocation. At paper scale (~167k servers, millions of
//! dependency edges) this replaces a `Vec<Vec<_>>` with two cache-friendly
//! arrays and makes the SCC condensation pass a linear scan.

use crate::scc::{tarjan_scc_with, SccResult};

/// [`Csr::condense`] over any adjacency representation: `degree(u)` is
/// node `u`'s out-degree and `neighbor(u, k)` its `k`-th out-neighbor.
/// This is what lets callers condense an *implicit* graph (e.g. the
/// dependency-index build, whose per-server rows are shared per home
/// zone) without materializing a per-node edge copy first.
pub fn condense_with(
    scc: &SccResult,
    degree: impl Fn(usize) -> usize,
    neighbor: impl Fn(usize, usize) -> usize,
) -> Csr {
    let mut builder = Csr::builder();
    // Stamp array: `seen[c] == stamp` ⇔ component `c` already emitted
    // for the current row (linear dedup, no hashing).
    let mut seen = vec![u32::MAX; scc.count()];
    let mut row: Vec<u32> = Vec::new();
    for (c, members) in scc.components.iter().enumerate() {
        row.clear();
        for member in members {
            for k in 0..degree(member.index()) {
                let tc = scc.component_of[neighbor(member.index(), k)] as u32;
                if tc as usize != c && seen[tc as usize] != c as u32 {
                    seen[tc as usize] = c as u32;
                    row.push(tc);
                }
            }
        }
        builder.push_row(&row);
    }
    builder.finish()
}

/// An immutable directed graph in compressed sparse row form.
///
/// Node ids are dense `usize` indices in `[0, node_count)`; neighbor lists
/// preserve the insertion order of [`CsrBuilder::push_row`].
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for node `u`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Starts building a CSR row by row.
    pub fn builder() -> CsrBuilder {
        CsrBuilder {
            csr: Csr {
                offsets: vec![0],
                targets: Vec::new(),
            },
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `node`, in row insertion order.
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.targets[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }

    /// Strongly connected components (iterative Tarjan over the CSR).
    ///
    /// Component ids come out in reverse topological order: every edge of
    /// the condensation goes from a higher component id to a lower one, so
    /// ascending id order processes dependencies before their dependents.
    pub fn scc(&self) -> SccResult {
        tarjan_scc_with(
            self.node_count(),
            |u| self.neighbors(u).len(),
            |u, k| self.neighbors(u)[k] as usize,
        )
    }

    /// Condenses the graph through an SCC decomposition: one node per
    /// component, edges deduplicated, self-edges (intra-component) dropped.
    ///
    /// Component rows list successor components in first-occurrence order
    /// over the members' neighbor lists, so the result is deterministic.
    pub fn condense(&self, scc: &SccResult) -> Csr {
        condense_with(
            scc,
            |u| self.neighbors(u).len(),
            |u, k| self.neighbors(u)[k] as usize,
        )
    }
}

/// Incremental CSR construction; rows must be pushed in node-id order.
#[derive(Debug)]
pub struct CsrBuilder {
    csr: Csr,
}

impl CsrBuilder {
    /// Appends the out-neighbor row of the next node.
    ///
    /// # Panics
    ///
    /// Panics if the graph would exceed `u32` offsets.
    pub fn push_row(&mut self, neighbors: &[u32]) {
        self.csr.targets.extend_from_slice(neighbors);
        let end = u32::try_from(self.csr.targets.len()).expect("CSR edge count fits u32");
        self.csr.offsets.push(end);
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.csr.node_count()
    }

    /// Finishes the graph.
    pub fn finish(self) -> Csr {
        self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 → {1, 2}, 1 → {3}, 2 → {3}, 3 → {}
        let mut b = Csr::builder();
        b.push_row(&[1, 2]);
        b.push_row(&[3]);
        b.push_row(&[3]);
        b.push_row(&[]);
        b.finish()
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn scc_on_dag_is_singletons_in_reverse_topo_order() {
        let g = diamond();
        let scc = g.scc();
        assert_eq!(scc.count(), 4);
        // Reverse topological: successors get smaller ids.
        assert!(scc.component_of[3] < scc.component_of[1]);
        assert!(scc.component_of[3] < scc.component_of[2]);
        assert!(scc.component_of[1] < scc.component_of[0]);
        assert!(scc.component_of[2] < scc.component_of[0]);
    }

    #[test]
    fn scc_collapses_cycles() {
        // 0 ↔ 1 cycle feeding 2.
        let mut b = Csr::builder();
        b.push_row(&[1]);
        b.push_row(&[0, 2]);
        b.push_row(&[]);
        let g = b.finish();
        let scc = g.scc();
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.component_of[0], scc.component_of[1]);
        assert!(scc.component_of[2] < scc.component_of[0]);
    }

    #[test]
    fn condense_dedups_and_drops_self_edges() {
        // 0 ↔ 1 cycle with two parallel edges into 2, plus 0 → 2.
        let mut b = Csr::builder();
        b.push_row(&[1, 2]);
        b.push_row(&[0, 2]);
        b.push_row(&[]);
        let g = b.finish();
        let scc = g.scc();
        let dag = g.condense(&scc);
        assert_eq!(dag.node_count(), 2);
        let pair = scc.component_of[0];
        assert_eq!(dag.neighbors(pair), &[scc.component_of[2] as u32]);
        assert_eq!(dag.neighbors(scc.component_of[2]), &[] as &[u32]);
    }

    #[test]
    fn condense_with_matches_csr_condense() {
        // Same graph, materialized vs implicit adjacency.
        let mut b = Csr::builder();
        b.push_row(&[1, 2]);
        b.push_row(&[0, 2]);
        b.push_row(&[]);
        let g = b.finish();
        let scc = g.scc();
        let via_csr = g.condense(&scc);
        let rows = [vec![1u32, 2], vec![0, 2], vec![]];
        let via_accessors = condense_with(&scc, |u| rows[u].len(), |u, k| rows[u][k] as usize);
        assert_eq!(via_csr.node_count(), via_accessors.node_count());
        for c in 0..via_csr.node_count() {
            assert_eq!(via_csr.neighbors(c), via_accessors.neighbors(c));
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::builder().finish();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.scc().count(), 0);
    }
}
