//! Dinic max-flow and minimum s–t **vertex** cuts.
//!
//! The paper determines "critical bottleneck nameservers" by computing a
//! min-cut of the delegation graph (§3.2, Figure 7). Compromising a
//! nameserver removes a *vertex*, so the cut of interest is a vertex cut:
//! the standard reduction splits every node `v` into `v_in → v_out` with
//! capacity equal to the cost of removing `v`, turns original edges into
//! infinite-capacity arcs, and runs max-flow. The saturated split edges that
//! separate source from sink are exactly the minimum vertex cut
//! (Menger's theorem).

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Effectively-infinite capacity (large enough to never saturate, small
/// enough to never overflow when summed).
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: u64,
}

/// A flow network with Dinic max-flow.
///
/// Edges are stored in pairs: edge `2k` is the forward edge, `2k+1` its
/// residual reverse.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<u32>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> FlowNetwork {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge with capacity `cap`; returns its edge id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "endpoint out of range"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to: to as u32, cap });
        self.edges.push(Edge {
            to: from as u32,
            cap: 0,
        });
        self.adj[from].push(id as u32);
        self.adj[to].push(id as u32 + 1);
        id
    }

    /// Flow currently pushed through forward edge `id` (its reverse
    /// residual capacity).
    pub fn edge_flow(&self, id: usize) -> u64 {
        self.edges[id ^ 1].cap
    }

    /// Runs Dinic from `source` to `sink`, returning the max-flow value.
    /// May be called once per network (capacities are consumed).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> u64 {
        assert!(
            source < self.adj.len() && sink < self.adj.len(),
            "endpoint out of range"
        );
        if source == sink {
            return 0;
        }
        let n = self.adj.len();
        let mut total = 0u64;
        let mut level = vec![u32::MAX; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS: build the level graph.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            level[source] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for &eid in &self.adj[v] {
                    let e = &self.edges[eid as usize];
                    if e.cap > 0 && level[e.to as usize] == u32::MAX {
                        level[e.to as usize] = level[v] + 1;
                        queue.push_back(e.to as usize);
                    }
                }
            }
            if level[sink] == u32::MAX {
                break;
            }
            // Blocking flow with current-arc optimization, iteratively.
            it.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_push(source, sink, INF, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total = total.saturating_add(pushed);
            }
        }
        total
    }

    /// One augmenting path in the level graph (iterative DFS).
    fn dfs_push(
        &mut self,
        source: usize,
        sink: usize,
        limit: u64,
        level: &[u32],
        it: &mut [usize],
    ) -> u64 {
        // Path of edge ids from source toward sink.
        let mut path: Vec<u32> = Vec::new();
        let mut v = source;
        loop {
            if v == sink {
                // Found an augmenting path: bottleneck and apply.
                let mut bottleneck = limit;
                for &eid in &path {
                    bottleneck = bottleneck.min(self.edges[eid as usize].cap);
                }
                for &eid in &path {
                    self.edges[eid as usize].cap -= bottleneck;
                    self.edges[(eid as usize) ^ 1].cap += bottleneck;
                }
                return bottleneck;
            }
            // Advance the current arc at v.
            let mut advanced = false;
            while it[v] < self.adj[v].len() {
                let eid = self.adj[v][it[v]];
                let e = &self.edges[eid as usize];
                let to = e.to as usize;
                if e.cap > 0 && level[to] == level[v] + 1 {
                    path.push(eid);
                    v = to;
                    advanced = true;
                    break;
                }
                it[v] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: retreat.
            if v == source {
                return 0;
            }
            let eid = path.pop().expect("non-source dead end has a parent edge");
            // Exhaust this arc at the parent.
            let parent = self.edges[(eid as usize) ^ 1].to as usize;
            it[parent] += 1;
            v = parent;
        }
    }

    /// After [`FlowNetwork::max_flow`], the set of nodes reachable from
    /// `source` in the residual graph (the source side of a min cut).
    pub fn residual_reachable(&self, source: usize) -> BitSet {
        let mut seen = BitSet::new(self.adj.len());
        seen.insert(source);
        let mut stack = vec![source];
        while let Some(v) = stack.pop() {
            for &eid in &self.adj[v] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && seen.insert(e.to as usize) {
                    stack.push(e.to as usize);
                }
            }
        }
        seen
    }
}

/// The result of a minimum vertex cut computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexCut {
    /// Sum of weights of the cut vertices (the max-flow value).
    pub total_weight: u64,
    /// The cut vertices, ascending by id. Removing exactly these nodes
    /// disconnects every source→sink path.
    pub cut: Vec<NodeId>,
}

/// Computes a minimum-weight vertex cut separating `source` from `sink`.
///
/// `weight(v)` is the cost of removing node `v`; `source` and `sink`
/// themselves are never cut (they get infinite weight). Returns `None` when
/// no finite cut exists — i.e. there is a direct `source → sink` edge, or
/// `source == sink`.
///
/// In the delegation-graph application, `source` is the trusted root,
/// `sink` is the surveyed name, and weights encode attack cost (unit for
/// the plain min-cut of Figure 7; lexicographic weights for the
/// safe-bottleneck refinement).
pub fn min_vertex_cut<N>(
    graph: &DiGraph<N>,
    source: NodeId,
    sink: NodeId,
    mut weight: impl FnMut(NodeId) -> u64,
) -> Option<VertexCut> {
    if source == sink {
        return None;
    }
    let n = graph.node_count();
    // Node v splits into in-node 2v and out-node 2v+1.
    let mut net = FlowNetwork::new(2 * n);
    for v in graph.nodes() {
        let w = if v == source || v == sink {
            INF
        } else {
            weight(v).min(INF - 1)
        };
        net.add_edge(2 * v.index(), 2 * v.index() + 1, w);
    }
    for (u, v) in graph.edges() {
        if u != v {
            net.add_edge(2 * u.index() + 1, 2 * v.index(), INF);
        }
    }
    let flow = net.max_flow(2 * source.index() + 1, 2 * sink.index());
    if flow >= INF - 1 {
        return None;
    }
    let reachable = net.residual_reachable(2 * source.index() + 1);
    let mut cut = Vec::new();
    for v in graph.nodes() {
        if v == source || v == sink {
            continue;
        }
        // The split edge crosses the cut: in-node on the source side,
        // out-node on the sink side.
        if reachable.contains(2 * v.index()) && !reachable.contains(2 * v.index() + 1) {
            cut.push(v);
        }
    }
    Some(VertexCut {
        total_weight: flow,
        cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_flow_classic() {
        // Two disjoint unit paths s→a→t and s→b→t.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        net.add_edge(s, a, 1);
        net.add_edge(s, b, 1);
        net.add_edge(a, t, 1);
        net.add_edge(b, t, 1);
        assert_eq!(net.max_flow(s, t), 2);
    }

    #[test]
    fn max_flow_bottleneck() {
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        net.add_edge(s, a, 10);
        net.add_edge(a, b, 3);
        net.add_edge(b, t, 10);
        assert_eq!(net.max_flow(s, t), 3);
        // The saturated edge a→b carries all flow.
        assert_eq!(net.edge_flow(2), 3);
    }

    #[test]
    fn max_flow_with_residual_rerouting() {
        // The classic example requiring flow cancellation.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        net.add_edge(s, a, 1);
        net.add_edge(s, b, 1);
        net.add_edge(a, b, 1);
        net.add_edge(a, t, 1);
        net.add_edge(b, t, 1);
        assert_eq!(net.max_flow(s, t), 2);
    }

    #[test]
    fn disconnected_flow_is_zero() {
        let mut net = FlowNetwork::new(2);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    fn chain_graph() -> (DiGraph<()>, Vec<NodeId>) {
        // s → a → b → t: any interior node is a cut.
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[2], ids[3]);
        (g, ids)
    }

    #[test]
    fn vertex_cut_chain() {
        let (g, ids) = chain_graph();
        let cut = min_vertex_cut(&g, ids[0], ids[3], |_| 1).expect("cuttable");
        assert_eq!(cut.total_weight, 1);
        assert_eq!(cut.cut.len(), 1);
        assert!(cut.cut[0] == ids[1] || cut.cut[0] == ids[2]);
    }

    #[test]
    fn vertex_cut_weighted_prefers_cheap_node() {
        let (g, ids) = chain_graph();
        // Make node a expensive; the cut must pick b.
        let cut = min_vertex_cut(&g, ids[0], ids[3], |v| if v == ids[1] { 100 } else { 1 })
            .expect("cuttable");
        assert_eq!(cut.total_weight, 1);
        assert_eq!(cut.cut, vec![ids[2]]);
    }

    #[test]
    fn vertex_cut_diamond_needs_both_arms() {
        // s → {a, b} → t: must remove both arms.
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        let cut = min_vertex_cut(&g, s, t, |_| 1).expect("cuttable");
        assert_eq!(cut.total_weight, 2);
        assert_eq!(cut.cut, vec![a, b]);
    }

    #[test]
    fn vertex_cut_none_for_direct_edge() {
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t);
        assert_eq!(min_vertex_cut(&g, s, t, |_| 1), None);
        assert_eq!(min_vertex_cut(&g, s, s, |_| 1), None);
    }

    #[test]
    fn vertex_cut_already_disconnected() {
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let cut = min_vertex_cut(&g, s, t, |_| 1).expect("empty cut");
        assert_eq!(cut.total_weight, 0);
        assert!(cut.cut.is_empty());
    }

    #[test]
    fn vertex_cut_removal_disconnects() {
        // Verify the cut property on a denser graph: removing the cut
        // leaves no s→t path.
        let mut g = DiGraph::<()>::new();
        let ids: Vec<NodeId> = (0..8).map(|_| g.add_node(())).collect();
        let edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (6, 7),
            (2, 5),
        ];
        for (u, v) in edges {
            g.add_edge(ids[u], ids[v]);
        }
        let cut = min_vertex_cut(&g, ids[0], ids[7], |_| 1).expect("cuttable");
        assert_eq!(cut.total_weight, 1, "node 6 is the bottleneck");
        assert_eq!(cut.cut, vec![ids[6]]);
        // Remove the cut and check s cannot reach t.
        let removed: std::collections::HashSet<NodeId> = cut.cut.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(v) = stack.pop() {
            for &n in g.out_neighbors(v) {
                if !removed.contains(&n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        assert!(!seen.contains(&ids[7]));
    }

    #[test]
    fn vertex_cut_cycles_do_not_confuse() {
        // s → a ↔ b → t plus a self-loop on a.
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(a, a);
        g.add_edge(b, t);
        let cut = min_vertex_cut(&g, s, t, |_| 1).expect("cuttable");
        assert_eq!(cut.total_weight, 1);
    }
}
