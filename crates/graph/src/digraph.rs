//! An arena-based directed graph with dense node ids.
//!
//! Nodes carry a weight `N` (the analysis stores nameserver metadata there);
//! edges are unweighted ordered pairs. Both out- and in-adjacency are
//! maintained because the trust analyses traverse in both directions
//! ("which servers does this name depend on" vs. "which names does this
//! server control").

/// A dense node identifier, valid for the graph that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed graph with node weights.
#[derive(Debug, Clone)]
pub struct DiGraph<N> {
    weights: Vec<N>,
    out_edges: Vec<Vec<NodeId>>,
    in_edges: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<N> Default for DiGraph<N> {
    fn default() -> Self {
        DiGraph {
            weights: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            edge_count: 0,
        }
    }
}

impl<N> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> DiGraph<N> {
        DiGraph::default()
    }

    /// Adds a node with the given weight, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.weights.len() as u32);
        self.weights.push(weight);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed edge `from → to`. Parallel edges and self-loops are
    /// permitted (delegation data can contain both; analyses that care
    /// deduplicate).
    ///
    /// # Panics
    ///
    /// Panics if either id is not from this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.weights.len(), "from node out of range");
        assert!(to.index() < self.weights.len(), "to node out of range");
        self.out_edges[from.index()].push(to);
        self.in_edges[to.index()].push(from);
        self.edge_count += 1;
    }

    /// Adds `from → to` unless that exact edge already exists.
    /// Returns whether an edge was added. O(out-degree).
    pub fn add_edge_dedup(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.out_edges[from.index()].contains(&to) {
            false
        } else {
            self.add_edge(from, to);
            true
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The weight of `node`.
    pub fn weight(&self, node: NodeId) -> &N {
        &self.weights[node.index()]
    }

    /// Mutable weight access.
    pub fn weight_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.weights[node.index()]
    }

    /// Successors of `node`.
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out_edges[node.index()]
    }

    /// Predecessors of `node`.
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.in_edges[node.index()]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.index()].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node.index()].len()
    }

    /// Iterates node ids in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.weights.len() as u32).map(NodeId)
    }

    /// Iterates all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(from, outs)| outs.iter().map(move |&to| (NodeId(from as u32), to)))
    }

    /// Builds the graph with edge directions reversed (weights cloned).
    pub fn reversed(&self) -> DiGraph<N>
    where
        N: Clone,
    {
        let mut g = DiGraph::new();
        for w in &self.weights {
            g.add_node(w.clone());
        }
        for (from, to) in self.edges() {
            g.add_edge(to, from);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g: DiGraph<&str> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_neighbors(a), &[b, c]);
        assert_eq!(g.in_neighbors(c), &[a, b]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(*g.weight(b), "b");
    }

    #[test]
    fn dedup_edges() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(g.add_edge_dedup(a, b));
        assert!(!g.add_edge_dedup(a, b));
        assert!(g.add_edge_dedup(b, a), "reverse direction is distinct");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loops_allowed() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        assert_eq!(g.out_neighbors(a), &[a]);
        assert_eq!(g.in_neighbors(a), &[a]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let mut g: DiGraph<u8> = DiGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        g.add_edge(a, b);
        let r = g.reversed();
        assert_eq!(r.out_neighbors(b), &[a]);
        assert_eq!(r.in_neighbors(a), &[b]);
        assert_eq!(*r.weight(a), 1);
    }

    #[test]
    fn edges_iterator() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(b, a);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(a, b), (b, a)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_foreign_node_panics() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(7));
    }

    #[test]
    fn weight_mut() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let a = g.add_node(0);
        *g.weight_mut(a) += 5;
        assert_eq!(*g.weight(a), 5);
    }
}
