//! Directed-graph substrate for delegation-graph analysis.
//!
//! This crate is a small, self-contained graph library (in place of
//! `petgraph`) providing exactly what the transitive-trust analysis needs:
//!
//! * [`digraph`] — an arena-based directed graph with dense [`NodeId`]s;
//! * [`csr`] — immutable compressed-sparse-row adjacency for build-once
//!   read-many graphs (the survey's dependency index);
//! * [`bitset`] — a fixed-capacity bitset used for reachability sets, plus
//!   a deduplicating set interner for memoized sub-closures;
//! * [`traversal`] — BFS/DFS, topological sort, reachability and transitive
//!   closure;
//! * [`scc`] — Tarjan strongly-connected components and condensation
//!   (delegation graphs contain cycles: zones serving each other);
//! * [`flow`] — Dinic max-flow and **minimum s–t vertex cuts** via node
//!   splitting, the primitive behind the paper's "bottleneck nameserver"
//!   analysis (Figure 7);
//! * [`dom`] — dominator computation, an alternative single-point-of-failure
//!   analysis used by the ablation benches.

#![forbid(unsafe_code)]

pub mod bitset;
pub mod csr;
pub mod digraph;
pub mod dom;
pub mod flow;
pub mod scc;
pub mod traversal;

pub use bitset::{BitSet, BitSetInterner, SetId};
pub use csr::{Csr, CsrBuilder};
pub use digraph::{DiGraph, NodeId};
pub use flow::{FlowNetwork, VertexCut};
