//! Strongly connected components (iterative Tarjan) and condensation.
//!
//! Delegation graphs are cyclic in practice — zones serve each other's
//! nameservers (the paper's Figure 1 shows cornell ↔ rochester ↔ wisc
//! interdependencies). SCCs identify such mutual-trust clusters, and the
//! condensation turns the graph into a DAG for closure computations.

use crate::digraph::{DiGraph, NodeId};

/// The SCC decomposition of a graph.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// For each node, the id of its component (0-based, reverse
    /// topological: an edge in the condensation goes from a higher SCC id
    /// to a lower one... see [`condensation`] which re-checks this).
    pub component_of: Vec<usize>,
    /// Members of each component.
    pub components: Vec<Vec<NodeId>>,
}

impl SccResult {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.components.len()
    }
}

/// Computes strongly connected components with an iterative Tarjan.
pub fn tarjan_scc<N>(graph: &DiGraph<N>) -> SccResult {
    tarjan_scc_with(
        graph.node_count(),
        |u| graph.out_degree(NodeId(u as u32)),
        |u, k| graph.out_neighbors(NodeId(u as u32))[k].index(),
    )
}

/// The iterative-Tarjan core over any adjacency representation: `degree(u)`
/// is node `u`'s out-degree and `neighbor(u, k)` its `k`-th out-neighbor.
/// [`tarjan_scc`] (arena graphs) and [`crate::csr::Csr::scc`] (CSR) both
/// delegate here.
pub fn tarjan_scc_with(
    n: usize,
    degree: impl Fn(usize) -> usize,
    neighbor: impl Fn(usize, usize) -> usize,
) -> SccResult {
    const UNSET: usize = usize::MAX;
    let mut index_of = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut component_of = vec![UNSET; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, neighbor cursor).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in (0..n as u32).map(NodeId) {
        if index_of[root.index()] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index_of[root.index()] = next_index;
        low[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < degree(v.index()) {
                let w = NodeId(neighbor(v.index(), *cursor) as u32);
                *cursor += 1;
                if index_of[w.index()] == UNSET {
                    index_of[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index_of[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent.index()] = low[parent.index()].min(low[v.index()]);
                }
                if low[v.index()] == index_of[v.index()] {
                    // v roots a component; pop it off the stack.
                    let id = components.len();
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w.index()] = false;
                        component_of[w.index()] = id;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(members);
                }
            }
        }
    }
    SccResult {
        component_of,
        components,
    }
}

/// Builds the condensation DAG: one node per SCC (weighted by member count),
/// with deduplicated edges between distinct components.
pub fn condensation<N>(graph: &DiGraph<N>) -> (DiGraph<usize>, SccResult) {
    let scc = tarjan_scc(graph);
    let mut dag: DiGraph<usize> = DiGraph::new();
    for members in &scc.components {
        dag.add_node(members.len());
    }
    let mut seen = std::collections::HashSet::new();
    for (from, to) in graph.edges() {
        let cf = scc.component_of[from.index()];
        let ct = scc.component_of[to.index()];
        if cf != ct && seen.insert((cf, ct)) {
            dag.add_edge(NodeId(cf as u32), NodeId(ct as u32));
        }
    }
    (dag, scc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::topo_sort;

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = DiGraph::<()>::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(nodes[i], nodes[(i + 1) % 5]);
        }
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.components[0].len(), 5);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(b, c);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        assert!(scc.components.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn mixed_graph_mirrors_paper_interdependency() {
        // cornell ↔ rochester form a mutual-trust pair; wisc depends on
        // umich; rochester depends on wisc.
        let mut g = DiGraph::<&str>::new();
        let cornell = g.add_node("cornell");
        let rochester = g.add_node("rochester");
        let wisc = g.add_node("wisc");
        let umich = g.add_node("umich");
        g.add_edge(cornell, rochester);
        g.add_edge(rochester, cornell);
        g.add_edge(rochester, wisc);
        g.add_edge(wisc, umich);
        let (dag, scc) = condensation(&g);
        assert_eq!(scc.count(), 3);
        assert_eq!(
            scc.component_of[cornell.index()],
            scc.component_of[rochester.index()]
        );
        assert_ne!(
            scc.component_of[wisc.index()],
            scc.component_of[umich.index()]
        );
        // Condensation is a DAG.
        assert!(topo_sort(&dag).is_some());
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edge_count(), 2);
        // The pair component has weight 2.
        let pair = NodeId(scc.component_of[cornell.index()] as u32);
        assert_eq!(*dag.weight(pair), 2);
    }

    #[test]
    fn condensation_deduplicates_edges() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(a, b);
        let (dag, _) = condensation(&g);
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        let (dag, _) = condensation(&g);
        assert_eq!(dag.edge_count(), 0, "self-loop collapses away");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::<()>::new();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 0);
    }
}
