//! Strongly connected components (iterative Tarjan) and condensation.
//!
//! Delegation graphs are cyclic in practice — zones serve each other's
//! nameservers (the paper's Figure 1 shows cornell ↔ rochester ↔ wisc
//! interdependencies). SCCs identify such mutual-trust clusters, and the
//! condensation turns the graph into a DAG for closure computations.

use crate::digraph::{DiGraph, NodeId};

/// The SCC decomposition of a graph.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// For each node, the id of its component (0-based, reverse
    /// topological: an edge in the condensation goes from a higher SCC id
    /// to a lower one... see [`condensation`] which re-checks this).
    pub component_of: Vec<usize>,
    /// Members of each component.
    pub components: Vec<Vec<NodeId>>,
}

impl SccResult {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.components.len()
    }
}

/// Computes strongly connected components with an iterative Tarjan.
pub fn tarjan_scc<N>(graph: &DiGraph<N>) -> SccResult {
    tarjan_scc_with(
        graph.node_count(),
        |u| graph.out_degree(NodeId(u as u32)),
        |u, k| graph.out_neighbors(NodeId(u as u32))[k].index(),
    )
}

/// The iterative-Tarjan core over any adjacency representation: `degree(u)`
/// is node `u`'s out-degree and `neighbor(u, k)` its `k`-th out-neighbor.
/// [`tarjan_scc`] (arena graphs) and [`crate::csr::Csr::scc`] (CSR) both
/// delegate here.
pub fn tarjan_scc_with(
    n: usize,
    degree: impl Fn(usize) -> usize,
    neighbor: impl Fn(usize, usize) -> usize,
) -> SccResult {
    const UNSET: usize = usize::MAX;
    let mut index_of = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut component_of = vec![UNSET; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, neighbor cursor).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in (0..n as u32).map(NodeId) {
        if index_of[root.index()] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index_of[root.index()] = next_index;
        low[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < degree(v.index()) {
                let w = NodeId(neighbor(v.index(), *cursor) as u32);
                *cursor += 1;
                if index_of[w.index()] == UNSET {
                    index_of[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index_of[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent.index()] = low[parent.index()].min(low[v.index()]);
                }
                if low[v.index()] == index_of[v.index()] {
                    // v roots a component; pop it off the stack.
                    let id = components.len();
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w.index()] = false;
                        component_of[w.index()] = id;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(members);
                }
            }
        }
    }
    SccResult {
        component_of,
        components,
    }
}

/// Renumbers an SCC decomposition into the *canonical* form: components
/// are ordered by (longest path to a condensation sink, ascending; smallest
/// member node id, ascending) and member lists are sorted ascending.
///
/// The canonical numbering is a pure function of the component *partition*
/// and the graph — any SCC algorithm, serial or parallel, lands on the same
/// ids after this pass. It stays reverse topological (every condensation
/// edge goes from a higher id to a strictly lower one, because the
/// longest-path level strictly decreases along an edge), which is the
/// invariant downstream memoization orders rely on.
pub fn canonical_scc(
    scc: &SccResult,
    degree: impl Fn(usize) -> usize,
    neighbor: impl Fn(usize, usize) -> usize,
) -> SccResult {
    let n = scc.component_of.len();
    let c = scc.count();
    // Members per (old) component, node ids ascending.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
    for u in 0..n {
        members[scc.component_of[u]].push(NodeId(u as u32));
    }
    // Cross-component edges, as a flat predecessor CSR over the raw
    // *multigraph* — deduplicating successors buys nothing here: the
    // level recurrence takes a max over edges (equal over duplicates),
    // and the Kahn counter just has to reach zero when a component's
    // last raw out-edge resolves. Two streaming passes over the edges
    // beat one pass through epoch stamps and per-component vectors.
    let mut out_raw = vec![0u32; c];
    let mut pred_off = vec![0u32; c + 1];
    for u in 0..n {
        let cu = scc.component_of[u];
        for k in 0..degree(u) {
            let cd = scc.component_of[neighbor(u, k)];
            if cd != cu {
                out_raw[cu] += 1;
                pred_off[cd + 1] += 1;
            }
        }
    }
    for i in 0..c {
        pred_off[i + 1] += pred_off[i];
    }
    let mut cursor: Vec<u32> = pred_off[..c].to_vec();
    let mut preds = vec![0u32; pred_off[c] as usize];
    for u in 0..n {
        let cu = scc.component_of[u];
        for k in 0..degree(u) {
            let cd = scc.component_of[neighbor(u, k)];
            if cd != cu {
                preds[cursor[cd] as usize] = cu as u32;
                cursor[cd] += 1;
            }
        }
    }
    drop(cursor);
    // Longest path to a sink, by Kahn's algorithm from the sinks upward.
    let mut remaining = out_raw;
    let mut level = vec![0u32; c];
    let mut queue: Vec<usize> = (0..c).filter(|&cid| remaining[cid] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let cid = queue[head];
        head += 1;
        for &p in &preds[pred_off[cid] as usize..pred_off[cid + 1] as usize] {
            let p = p as usize;
            level[p] = level[p].max(level[cid] + 1);
            remaining[p] -= 1;
            if remaining[p] == 0 {
                queue.push(p);
            }
        }
    }
    debug_assert_eq!(head, c, "condensation must be acyclic");
    // Sinks first: ids ascend with level, so edges (which always point to
    // strictly lower levels) point to strictly lower ids. The smallest
    // member is a total tiebreak — components partition the nodes.
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_unstable_by_key(|&cid| (level[cid], members[cid][0]));
    let mut new_id = vec![0usize; c];
    for (new, &old) in order.iter().enumerate() {
        new_id[old] = new;
    }
    SccResult {
        component_of: scc.component_of.iter().map(|&old| new_id[old]).collect(),
        components: order
            .iter()
            .map(|&old| std::mem::take(&mut members[old]))
            .collect(),
    }
}

/// Frontier size below which a trim round runs inline instead of fanning
/// out — spawning a scope costs more than peeling a few dozen nodes.
const TRIM_PARALLEL_THRESHOLD: usize = 512;

/// Sub-region size below which FW-BW queues the region whole instead of
/// decomposing it into weakly connected pieces first — the decomposition
/// BFS is not worth it on a region one task finishes anyway.
const WCC_SPLIT_MIN: usize = 32;

/// Effective worker count below which the FW-BW strategy loses to a
/// canonicalized serial Tarjan: the trim/FW-BW pipeline re-reads every
/// edge ~6× (reverse CSR build, trim rounds, forward+backward BFS, weak
/// splits) where Tarjan reads each once, so it needs enough real cores
/// to amortize the redundancy.
const FWBW_MIN_WORKERS: usize = 4;

/// Parallel strongly connected components with the partition strategy
/// picked by *usable* parallelism: below `FWBW_MIN_WORKERS` effective
/// workers (`min(threads, cores)`) the serial Tarjan core runs as-is; at
/// or above it, [`fwbw_scc_with`] decomposes the graph with trim rounds
/// plus task-parallel forward-backward reachability and canonicalizes.
///
/// The partition is unique, the numbering deterministic for a given
/// machine shape, and cross-component edges always point from a higher
/// component id to a lower one (reverse topological) — the invariant
/// downstream condensation and memoization rely on. The *numbering* may
/// differ between the two strategies (raw Tarjan vs canonical); callers
/// that need machine-independent ids canonicalize via [`canonical_scc`]
/// or call [`fwbw_scc_with`] directly. Raw Tarjan is kept on the
/// small-machine route because the canonical renumbering pass re-reads
/// every edge twice — pure overhead when the discovery order is already
/// deterministic.
pub fn parallel_scc_with(
    n: usize,
    degree: impl Fn(usize) -> usize + Sync,
    neighbor: impl Fn(usize, usize) -> usize + Sync,
    threads: usize,
) -> SccResult {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if threads.min(cores) < FWBW_MIN_WORKERS || n < 2 {
        return tarjan_scc_with(n, &degree, &neighbor);
    }
    fwbw_scc_with(n, degree, neighbor, threads)
}

/// The explicit trim+FW-BW strategy in canonical numbering: trim rounds
/// peel the acyclic bulk of the graph in parallel (a delegation graph is
/// mostly a DAG — every in- or out-degree-0 node is its own SCC), then
/// task-parallel forward-backward (FW-BW) reachability decomposes the
/// cyclic residue.
///
/// Output is byte-identical to `canonical_scc(&tarjan_scc_with(..), ..)`
/// for every input, thread count, and machine shape; exposed separately
/// so tests and benches can pin the parallel strategy regardless of the
/// machine's core count. At `threads <= 1` it falls back to the
/// canonicalized Tarjan.
pub fn fwbw_scc_with(
    n: usize,
    degree: impl Fn(usize) -> usize + Sync,
    neighbor: impl Fn(usize, usize) -> usize + Sync,
    threads: usize,
) -> SccResult {
    if threads <= 1 || n < 2 {
        return canonical_scc(&tarjan_scc_with(n, &degree, &neighbor), &degree, &neighbor);
    }
    let raw = trim_fwbw_scc(n, &degree, &neighbor, threads);
    canonical_scc(&raw, &degree, &neighbor)
}

/// The parallel partition pass behind [`parallel_scc_with`]: component ids
/// come out in discovery order (nondeterministic under real concurrency),
/// so callers must canonicalize before comparing or condensing.
fn trim_fwbw_scc<D, A>(n: usize, degree: &D, neighbor: &A, threads: usize) -> SccResult
where
    D: Fn(usize) -> usize + Sync,
    A: Fn(usize, usize) -> usize + Sync,
{
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
    use std::sync::Mutex;

    const UNSET: u32 = u32::MAX;
    // The caller's thread count selects the algorithm; the worker count is
    // additionally capped at the machine's parallelism — oversubscribing a
    // BFS workload onto fewer cores only adds context-switch latency.
    let cores = std::thread::available_parallelism().map_or(usize::MAX, |p| p.get());
    let threads = threads.min(n.max(1)).min(cores);

    // --- Reverse CSR (needed for backward reachability and in-degrees).
    // **Self-loops are dropped throughout**: a u→u edge never changes a
    // component partition, but it would pin both of u's trim counters
    // above zero forever — and dependency rows self-refer (a server's
    // home-zone row contains the server itself), so keeping them would
    // disable trimming for the entire graph.
    let in_count: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let out_rem: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (in_count, out_rem) = (&in_count, &out_rem);
            s.spawn(move || {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                for (u, rem) in out_rem.iter().enumerate().take(hi).skip(lo) {
                    let mut nonself = 0u32;
                    for k in 0..degree(u) {
                        let w = neighbor(u, k);
                        if w != u {
                            nonself += 1;
                            in_count[w].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    rem.store(nonself, Ordering::Relaxed);
                }
            });
        }
    });
    let mut roff = vec![0u32; n + 1];
    for u in 0..n {
        roff[u + 1] = roff[u] + in_count[u].load(Ordering::Relaxed);
    }
    // The scatter stays serial on purpose: per-edge fetch_adds on shared
    // row cursors cost more in cache-line contention than one
    // memcpy-speed pass saves.
    let mut rpos: Vec<u32> = roff[..n].to_vec();
    let mut rtargets = vec![0u32; roff[n] as usize];
    for u in 0..n {
        for k in 0..degree(u) {
            let w = neighbor(u, k);
            if w != u {
                rtargets[rpos[w] as usize] = u as u32;
                rpos[w] += 1;
            }
        }
    }
    drop(rpos);
    let in_neighbors = |u: usize| &rtargets[roff[u] as usize..roff[u + 1] as usize];

    // --- Trim rounds: any node with zero live in- or out-degree is a
    // singleton SCC; removing it may expose more. Each round claims the
    // candidate frontier (swap dedups double-nominations), then decrements
    // neighbor counters; whoever decrements a counter to zero nominates
    // that node for the next round.
    let removed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let in_rem: Vec<AtomicU32> = in_count; // live non-self in-degrees, reused
    let comp: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let comp_count = AtomicU32::new(0);

    let trim_round = |candidates: &[u32], next: &mut Vec<u32>| {
        for &u in candidates {
            let u = u as usize;
            if removed[u].swap(1, Ordering::Relaxed) != 0 {
                continue;
            }
            comp[u].store(
                comp_count.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            for k in 0..degree(u) {
                let w = neighbor(u, k);
                if w == u {
                    continue; // self-loops are not in the counters
                }
                if in_rem[w].fetch_sub(1, Ordering::AcqRel) == 1
                    && removed[w].load(Ordering::Relaxed) == 0
                {
                    next.push(w as u32);
                }
            }
            for &w in in_neighbors(u) {
                let w = w as usize;
                if out_rem[w].fetch_sub(1, Ordering::AcqRel) == 1
                    && removed[w].load(Ordering::Relaxed) == 0
                {
                    next.push(w as u32);
                }
            }
        }
    };

    let mut frontier: Vec<u32> = (0..n as u32)
        .filter(|&u| {
            out_rem[u as usize].load(Ordering::Relaxed) == 0
                || in_rem[u as usize].load(Ordering::Relaxed) == 0
        })
        .collect();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        if frontier.len() < TRIM_PARALLEL_THRESHOLD {
            trim_round(&frontier, &mut next);
        } else {
            let part = frontier.len().div_ceil(threads).max(1);
            let locals = std::thread::scope(|s| {
                let handles: Vec<_> = frontier
                    .chunks(part)
                    .map(|slice| {
                        let trim_round = &trim_round;
                        s.spawn(move || {
                            let mut local = Vec::new();
                            trim_round(slice, &mut local);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trim worker"))
                    .collect::<Vec<_>>()
            });
            for local in locals {
                next.extend(local);
            }
        }
        frontier = next;
    }

    // --- FW-BW over the cyclic residue: a shared worklist of regions;
    // each task picks a pivot, computes forward/backward reachability
    // within its region, emits the intersection as one SCC, and splits the
    // rest into up to three independent subregions.
    let residue: Vec<u32> = (0..n as u32)
        .filter(|&u| removed[u as usize].load(Ordering::Relaxed) == 0)
        .collect();
    if !residue.is_empty() {
        const DONE: u32 = u32::MAX;
        let owner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(DONE)).collect();
        for &u in &residue {
            owner[u as usize].store(0, Ordering::Relaxed);
        }
        let next_region = AtomicU32::new(1);
        let pending = AtomicUsize::new(1);
        let worklist: Mutex<Vec<(u32, Vec<u32>)>> = Mutex::new(vec![(0, residue)]);

        std::thread::scope(|s| {
            for _ in 0..threads {
                let (worklist, pending, next_region) = (&worklist, &pending, &next_region);
                let (owner, comp, comp_count) = (&owner, &comp, &comp_count);
                let rtargets = &rtargets;
                let roff = &roff;
                s.spawn(move || {
                    // Per-worker scratch: 2-bit visit marks (1 = forward,
                    // 2 = backward), cleared sparsely between regions.
                    let mut mark = vec![0u8; n];
                    let mut queue: Vec<u32> = Vec::new();
                    let mut fwd: Vec<u32> = Vec::new();
                    let mut bwd: Vec<u32> = Vec::new();
                    let mut local: Vec<(u32, Vec<u32>)> = Vec::new();
                    let mut idle_spins = 0u32;
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| worklist.lock().expect("worklist").pop());
                        let Some((rid, region)) = task else {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            // Back off after a few fruitless polls so idle
                            // workers stop stealing timeslices from the
                            // one doing the BFS.
                            idle_spins += 1;
                            if idle_spins > 8 {
                                std::thread::sleep(std::time::Duration::from_micros(50));
                            } else {
                                std::thread::yield_now();
                            }
                            continue;
                        };
                        idle_spins = 0;
                        if region.len() == 1 {
                            let u = region[0] as usize;
                            owner[u].store(DONE, Ordering::Relaxed);
                            comp[u].store(
                                comp_count.fetch_add(1, Ordering::Relaxed),
                                Ordering::Relaxed,
                            );
                            pending.fetch_sub(1, Ordering::SeqCst);
                            continue;
                        }
                        // Pivot on the region's biggest hub (max in×out
                        // degree): delegation residues are customer cliques
                        // glued together through shared provider servers, so
                        // removing a hub's reachability classes shatters the
                        // remainder into independent pieces, where an
                        // arbitrary pivot would peel one leaf clique per
                        // pass.
                        let pivot = region
                            .iter()
                            .copied()
                            .max_by_key(|&u| {
                                let u = u as usize;
                                (roff[u + 1] - roff[u]) as u64 * degree(u) as u64
                            })
                            .expect("region is non-empty");
                        // Forward BFS within the region.
                        fwd.clear();
                        queue.clear();
                        queue.push(pivot);
                        mark[pivot as usize] |= 1;
                        fwd.push(pivot);
                        while let Some(v) = queue.pop() {
                            let v = v as usize;
                            for k in 0..degree(v) {
                                let w = neighbor(v, k);
                                if owner[w].load(Ordering::Relaxed) == rid && mark[w] & 1 == 0 {
                                    mark[w] |= 1;
                                    fwd.push(w as u32);
                                    queue.push(w as u32);
                                }
                            }
                        }
                        // Backward BFS within the region.
                        bwd.clear();
                        queue.clear();
                        queue.push(pivot);
                        mark[pivot as usize] |= 2;
                        bwd.push(pivot);
                        while let Some(v) = queue.pop() {
                            let v = v as usize;
                            for &w in &rtargets[roff[v] as usize..roff[v + 1] as usize] {
                                let w = w as usize;
                                if owner[w].load(Ordering::Relaxed) == rid && mark[w] & 2 == 0 {
                                    mark[w] |= 2;
                                    bwd.push(w as u32);
                                    queue.push(w as u32);
                                }
                            }
                        }
                        // fwd ∩ bwd is the pivot's SCC.
                        let cid = comp_count.fetch_add(1, Ordering::Relaxed);
                        let mut fwd_only: Vec<u32> = Vec::new();
                        for &u in &fwd {
                            if mark[u as usize] == 3 {
                                owner[u as usize].store(DONE, Ordering::Relaxed);
                                comp[u as usize].store(cid, Ordering::Relaxed);
                            } else {
                                fwd_only.push(u);
                            }
                        }
                        let bwd_only: Vec<u32> = bwd
                            .iter()
                            .copied()
                            .filter(|&u| mark[u as usize] == 2)
                            .collect();
                        let rest: Vec<u32> = region
                            .iter()
                            .copied()
                            .filter(|&u| {
                                mark[u as usize] == 0
                                    && owner[u as usize].load(Ordering::Relaxed) == rid
                            })
                            .collect();
                        for &u in &fwd {
                            mark[u as usize] = 0;
                        }
                        for &u in &bwd {
                            mark[u as usize] = 0;
                        }
                        for sub in [fwd_only, bwd_only, rest] {
                            if sub.is_empty() {
                                continue;
                            }
                            let sub_rid = next_region.fetch_add(1, Ordering::Relaxed);
                            for &u in &sub {
                                owner[u as usize].store(sub_rid, Ordering::Relaxed);
                            }
                            if sub.len() <= WCC_SPLIT_MIN {
                                pending.fetch_add(1, Ordering::SeqCst);
                                local.push((sub_rid, sub));
                                continue;
                            }
                            // Decompose into weakly connected pieces before
                            // queueing: once the pivot's SCC and the other
                            // reachability classes leave, a sub-region
                            // usually shatters into many independent
                            // clusters (sibling NS cliques that only met in
                            // the departed upstream servers). Queueing the
                            // pieces separately keeps the task tree wide —
                            // without this, the remainder re-enters whole
                            // and FW-BW peels one SCC per pass off it.
                            for &u in &sub {
                                if mark[u as usize] & 4 != 0 {
                                    continue;
                                }
                                mark[u as usize] |= 4;
                                queue.clear();
                                queue.push(u);
                                let mut piece = vec![u];
                                while let Some(v) = queue.pop() {
                                    let v = v as usize;
                                    for k in 0..degree(v) {
                                        let w = neighbor(v, k);
                                        if mark[w] & 4 == 0
                                            && owner[w].load(Ordering::Relaxed) == sub_rid
                                        {
                                            mark[w] |= 4;
                                            piece.push(w as u32);
                                            queue.push(w as u32);
                                        }
                                    }
                                    for &w in &rtargets[roff[v] as usize..roff[v + 1] as usize] {
                                        let w = w as usize;
                                        if mark[w] & 4 == 0
                                            && owner[w].load(Ordering::Relaxed) == sub_rid
                                        {
                                            mark[w] |= 4;
                                            piece.push(w as u32);
                                            queue.push(w as u32);
                                        }
                                    }
                                }
                                if piece.len() == 1 {
                                    // Isolated survivor: its only residue
                                    // edges led to the departed classes, so
                                    // it is a singleton SCC — finalize here
                                    // rather than round-tripping a task.
                                    let u = piece[0] as usize;
                                    owner[u].store(DONE, Ordering::Relaxed);
                                    comp[u].store(
                                        comp_count.fetch_add(1, Ordering::Relaxed),
                                        Ordering::Relaxed,
                                    );
                                    continue;
                                }
                                let piece_rid = next_region.fetch_add(1, Ordering::Relaxed);
                                for &x in &piece {
                                    owner[x as usize].store(piece_rid, Ordering::Relaxed);
                                }
                                pending.fetch_add(1, Ordering::SeqCst);
                                if piece.len() <= WCC_SPLIT_MIN {
                                    // Small cliques stay on this worker's
                                    // local stack: a few thousand of them
                                    // through the shared Mutex is the
                                    // dominant FW-BW cost, not the BFS work.
                                    local.push((piece_rid, piece));
                                } else {
                                    worklist.lock().expect("worklist").push((piece_rid, piece));
                                }
                            }
                            for &u in &sub {
                                mark[u as usize] &= !4;
                            }
                        }
                        pending.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }

    // --- Assemble (discovery-order ids; the caller canonicalizes).
    let count = comp_count.into_inner() as usize;
    let component_of: Vec<usize> = comp.into_iter().map(|a| a.into_inner() as usize).collect();
    let mut components: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for (u, &cid) in component_of.iter().enumerate() {
        debug_assert_ne!(cid, UNSET as usize, "every node lands in a component");
        components[cid].push(NodeId(u as u32));
    }
    SccResult {
        component_of,
        components,
    }
}

/// Builds the condensation DAG: one node per SCC (weighted by member count),
/// with deduplicated edges between distinct components.
pub fn condensation<N>(graph: &DiGraph<N>) -> (DiGraph<usize>, SccResult) {
    let scc = tarjan_scc(graph);
    let mut dag: DiGraph<usize> = DiGraph::new();
    for members in &scc.components {
        dag.add_node(members.len());
    }
    let mut seen = std::collections::HashSet::new();
    for (from, to) in graph.edges() {
        let cf = scc.component_of[from.index()];
        let ct = scc.component_of[to.index()];
        if cf != ct && seen.insert((cf, ct)) {
            dag.add_edge(NodeId(cf as u32), NodeId(ct as u32));
        }
    }
    (dag, scc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::topo_sort;

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = DiGraph::<()>::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(nodes[i], nodes[(i + 1) % 5]);
        }
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.components[0].len(), 5);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(b, c);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        assert!(scc.components.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn mixed_graph_mirrors_paper_interdependency() {
        // cornell ↔ rochester form a mutual-trust pair; wisc depends on
        // umich; rochester depends on wisc.
        let mut g = DiGraph::<&str>::new();
        let cornell = g.add_node("cornell");
        let rochester = g.add_node("rochester");
        let wisc = g.add_node("wisc");
        let umich = g.add_node("umich");
        g.add_edge(cornell, rochester);
        g.add_edge(rochester, cornell);
        g.add_edge(rochester, wisc);
        g.add_edge(wisc, umich);
        let (dag, scc) = condensation(&g);
        assert_eq!(scc.count(), 3);
        assert_eq!(
            scc.component_of[cornell.index()],
            scc.component_of[rochester.index()]
        );
        assert_ne!(
            scc.component_of[wisc.index()],
            scc.component_of[umich.index()]
        );
        // Condensation is a DAG.
        assert!(topo_sort(&dag).is_some());
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edge_count(), 2);
        // The pair component has weight 2.
        let pair = NodeId(scc.component_of[cornell.index()] as u32);
        assert_eq!(*dag.weight(pair), 2);
    }

    #[test]
    fn condensation_deduplicates_edges() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(a, b);
        let (dag, _) = condensation(&g);
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        let (dag, _) = condensation(&g);
        assert_eq!(dag.edge_count(), 0, "self-loop collapses away");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::<()>::new();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 0);
    }

    fn assert_canonical_parallel_matches(g: &DiGraph<()>) {
        let degree = |u: usize| g.out_degree(NodeId(u as u32));
        let neighbor = |u: usize, k: usize| g.out_neighbors(NodeId(u as u32))[k].index();
        let reference = canonical_scc(
            &tarjan_scc_with(g.node_count(), degree, neighbor),
            degree,
            neighbor,
        );
        // fwbw_scc_with pins the trim+FW-BW strategy (parallel_scc_with
        // would route small thread counts to the Tarjan core on small
        // machines); the adaptive dispatcher's numbering is strategy- and
        // machine-dependent, so it is normalized through canonical_scc
        // before comparing and checked reverse-topological directly.
        for threads in [1, 2, 8] {
            let parallel = fwbw_scc_with(g.node_count(), degree, neighbor, threads);
            assert_eq!(
                parallel.component_of, reference.component_of,
                "{threads} threads"
            );
            assert_eq!(
                parallel.components, reference.components,
                "{threads} threads"
            );
            let adaptive = parallel_scc_with(g.node_count(), degree, neighbor, threads);
            let normalized = canonical_scc(&adaptive, degree, neighbor);
            assert_eq!(
                normalized.component_of, reference.component_of,
                "{threads} adaptive"
            );
            for u in 0..g.node_count() {
                for k in 0..degree(u) {
                    let (cf, ct) = (
                        adaptive.component_of[u],
                        adaptive.component_of[neighbor(u, k)],
                    );
                    assert!(ct <= cf, "adaptive ids must be reverse topological");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_canonical_tarjan_on_mixed_graphs() {
        // Cycle + tail + isolated node + self-loop, the shapes trim and
        // FW-BW each have to handle.
        let mut g = DiGraph::<()>::new();
        let nodes: Vec<NodeId> = (0..8).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            g.add_edge(nodes[i], nodes[(i + 1) % 4]); // 4-cycle
        }
        g.add_edge(nodes[4], nodes[0]); // tail into the cycle
        g.add_edge(nodes[1], nodes[5]); // tail out of the cycle
        g.add_edge(nodes[6], nodes[6]); // self-loop
        assert_canonical_parallel_matches(&g);
    }

    #[test]
    fn parallel_matches_on_two_cycles_sharing_a_bridge() {
        let mut g = DiGraph::<()>::new();
        let nodes: Vec<NodeId> = (0..7).map(|_| g.add_node(())).collect();
        for i in 0..3 {
            g.add_edge(nodes[i], nodes[(i + 1) % 3]);
        }
        for i in 3..6 {
            g.add_edge(nodes[i], nodes[3 + (i + 1 - 3) % 3]);
        }
        g.add_edge(nodes[0], nodes[3]); // bridge between the cycles
        g.add_edge(nodes[5], nodes[6]);
        assert_canonical_parallel_matches(&g);
    }

    #[test]
    fn canonical_ids_are_reverse_topological() {
        let mut g = DiGraph::<()>::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[1], nodes[2]);
        g.add_edge(nodes[3], nodes[2]);
        g.add_edge(nodes[4], nodes[1]);
        let degree = |u: usize| g.out_degree(NodeId(u as u32));
        let neighbor = |u: usize, k: usize| g.out_neighbors(NodeId(u as u32))[k].index();
        let scc = fwbw_scc_with(g.node_count(), degree, neighbor, 4);
        for (from, to) in g.edges() {
            let (cf, ct) = (scc.component_of[from.index()], scc.component_of[to.index()]);
            if cf != ct {
                assert!(
                    ct < cf,
                    "edge {from:?}->{to:?} must point to a lower canonical id"
                );
            }
        }
        // Members come out sorted ascending.
        for members in &scc.components {
            assert!(members.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parallel_empty_and_singleton() {
        let scc = parallel_scc_with(0, |_| 0, |_, _| 0, 8);
        assert_eq!(scc.count(), 0);
        let scc = parallel_scc_with(1, |_| 0, |_, _| 0, 8);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.component_of, vec![0]);
        let scc = fwbw_scc_with(0, |_| 0, |_, _| 0, 8);
        assert_eq!(scc.count(), 0);
        let scc = fwbw_scc_with(1, |_| 0, |_, _| 0, 8);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.component_of, vec![0]);
    }
}
