//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! In a delegation graph rooted at the trusted root, a node `d` dominates
//! the surveyed name `t` when **every** resolution path passes through `d`
//! — i.e. `d` alone is a complete-hijack bottleneck (a min-cut of size 1).
//! The ablation benches compare dominator-based bottleneck detection with
//! the max-flow min-cut used in the paper.

use crate::digraph::{DiGraph, NodeId};
use crate::traversal::dfs_postorder;

/// Immediate dominators for all nodes reachable from `root`.
///
/// Returns `idom[v] = Some(d)` for reachable `v != root` (with
/// `idom[root] = Some(root)`), `None` for unreachable nodes.
pub fn immediate_dominators<N>(graph: &DiGraph<N>, root: NodeId) -> Vec<Option<NodeId>> {
    let n = graph.node_count();
    let postorder = dfs_postorder(graph, root);
    // Map node → postorder number; higher number = closer to root.
    let mut number = vec![usize::MAX; n];
    for (i, &v) in postorder.iter().enumerate() {
        number[v.index()] = i;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[root.index()] = Some(root);

    let intersect = |idom: &[Option<NodeId>], number: &[usize], mut a: NodeId, mut b: NodeId| {
        while a != b {
            while number[a.index()] < number[b.index()] {
                a = idom[a.index()].expect("processed nodes have dominators");
            }
            while number[b.index()] < number[a.index()] {
                b = idom[b.index()].expect("processed nodes have dominators");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder, skipping the root.
        for &v in postorder.iter().rev() {
            if v == root {
                continue;
            }
            // First processed predecessor.
            let mut new_idom: Option<NodeId> = None;
            for &p in graph.in_neighbors(v) {
                if number[p.index()] == usize::MAX {
                    continue; // unreachable predecessor
                }
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(current) => intersect(&idom, &number, p, current),
                });
            }
            if let Some(d) = new_idom {
                if idom[v.index()] != Some(d) {
                    idom[v.index()] = Some(d);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// The strict dominators of `node` (excluding itself and the root), closest
/// first. Empty when `node` is unreachable.
pub fn strict_dominators<N>(graph: &DiGraph<N>, root: NodeId, node: NodeId) -> Vec<NodeId> {
    let idom = immediate_dominators(graph, root);
    let mut out = Vec::new();
    let mut v = node;
    while let Some(d) = idom[v.index()] {
        if d == v {
            break; // reached the root
        }
        if d != root {
            out.push(d);
        }
        v = d;
    }
    if idom[node.index()].is_none() {
        Vec::new()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dominators() {
        let mut g = DiGraph::<()>::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[2], ids[3]);
        let idom = immediate_dominators(&g, ids[0]);
        assert_eq!(idom[ids[1].index()], Some(ids[0]));
        assert_eq!(idom[ids[2].index()], Some(ids[1]));
        assert_eq!(idom[ids[3].index()], Some(ids[2]));
        assert_eq!(strict_dominators(&g, ids[0], ids[3]), vec![ids[2], ids[1]]);
    }

    #[test]
    fn diamond_has_no_interior_dominator() {
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        let idom = immediate_dominators(&g, s);
        assert_eq!(idom[t.index()], Some(s), "t's only dominator is the root");
        assert!(strict_dominators(&g, s, t).is_empty());
    }

    #[test]
    fn bottleneck_matches_unit_mincut_of_one() {
        // s → {a,b} → c → t: c dominates t and is the unique min cut.
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        g.add_edge(c, t);
        assert_eq!(strict_dominators(&g, s, t), vec![c]);
        let cut = crate::flow::min_vertex_cut(&g, s, t, |_| 1).unwrap();
        assert_eq!(cut.cut, vec![c]);
    }

    #[test]
    fn unreachable_nodes_have_no_dominator() {
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let island = g.add_node(());
        let idom = immediate_dominators(&g, s);
        assert_eq!(idom[island.index()], None);
        assert!(strict_dominators(&g, s, island).is_empty());
    }

    #[test]
    fn cycle_dominators() {
        // s → a ↔ b, both reachable only through a.
        let mut g = DiGraph::<()>::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, a);
        let idom = immediate_dominators(&g, s);
        assert_eq!(idom[a.index()], Some(s));
        assert_eq!(idom[b.index()], Some(a));
    }
}
