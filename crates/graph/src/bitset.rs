//! A fixed-capacity bitset over `u64` blocks, plus an interner for
//! memoized set storage.
//!
//! Reachability and closure computations over survey-scale graphs need cheap
//! set union and membership; [`BitSet`] is the usual packed representation.
//! [`BitSetInterner`] stores many related sets compactly — each distinct
//! set once, sparse (sorted ids) when small and packed (bit blocks) when
//! dense — which is what lets the dependency index memoize one reachable
//! set per strongly connected component without quadratic memory.

use std::collections::HashMap;

use perils_util::bytestore::{U32Arr, U64Arr};
use perils_util::snapshot::{self, DecodeMode, SnapshotError, StoreDec};

/// A fixed-capacity set of `usize` values in `[0, capacity)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (block, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (block, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        present
    }

    /// Membership test (out-of-range values are absent).
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.blocks[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// In-place union; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(i * 64 + tz)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let capacity = values.iter().max().map_or(0, |&m| m + 1);
        let mut set = BitSet::new(capacity);
        for v in values {
            set.insert(v);
        }
        set
    }
}

/// Handle to a set stored in a [`BitSetInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetId(u32);

impl SetId {
    /// The id as an index into the interner's arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` id, for flat serialization. Pair with
    /// [`SetId::from_raw`]; not meaningful outside the interner that
    /// issued it.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its [`SetId::raw`] form. The caller owns
    /// validating it against the target interner's length — snapshot
    /// decoders do so before any set lookup.
    #[inline]
    pub fn from_raw(raw: u32) -> SetId {
        SetId(raw)
    }
}

/// One interned set: sparse sorted ids when small (a range of the shared
/// element arena — one allocation for all sparse sets, not one per set),
/// packed blocks when the set is dense enough that blocks are the smaller
/// representation. Dense blocks are an owned-or-view [`U64Arr`], so a
/// snapshot-loaded interner can leave them in the archive's byte store.
#[derive(Debug, Clone, PartialEq)]
enum CompactSet {
    Sparse { offset: u32, len: u32 },
    Dense { blocks: U64Arr, len: u32 },
}

/// A deduplicating arena of sets over `[0, capacity)`.
///
/// `intern` stores each distinct set once and hands out a [`SetId`];
/// identical sets (e.g. the zone closures of sibling registry servers)
/// share storage. Sets are stored sparsely (4 bytes per element) below a
/// density of 1/32 and as bit blocks above it, so both a survey-scale
/// arena of ~46-element mean closures and the occasional hub component
/// reaching thousands of servers stay memory-bounded.
#[derive(Debug, Clone)]
pub struct BitSetInterner {
    capacity: usize,
    sets: Vec<CompactSet>,
    /// Shared element storage of every sparse set: an owned `Vec` for
    /// built interners, a zero-copy archive view for snapshot loads.
    arena: U32Arr,
    /// FNV-1a hash of the sorted ids → first set with that hash (further
    /// same-hash sets go to `overflow`; collisions of *distinct* sets are
    /// vanishingly rare, so the common case costs one map probe and no
    /// per-bucket allocation).
    by_hash: HashMap<u64, SetId>,
    /// Rare same-hash-different-content candidates, scanned linearly.
    overflow: Vec<(u64, SetId)>,
    /// Total elements across interned sets, counting each set once
    /// (dedup-aware size accounting for diagnostics).
    stored_elements: usize,
    /// Whether `by_hash`/`overflow` reflect set storage. View-mode
    /// snapshot loads defer the rebuild (read paths never consult the
    /// maps); the first intern promotes the arena and rebuilds them.
    dedup_ready: bool,
}

impl BitSetInterner {
    /// Creates an empty interner for sets over `[0, capacity)`.
    pub fn new(capacity: usize) -> BitSetInterner {
        BitSetInterner {
            capacity,
            sets: Vec::new(),
            arena: U32Arr::Owned(Vec::new()),
            by_hash: HashMap::new(),
            overflow: Vec::new(),
            stored_elements: 0,
            dedup_ready: true,
        }
    }

    /// The element capacity sets are bounded by.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct sets stored.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no set has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Total elements across distinct sets (each set counted once).
    pub fn stored_elements(&self) -> usize {
        self.stored_elements
    }

    /// Interns `ids`, which **must** be sorted ascending and
    /// duplicate-free with every element `< capacity` — dedup comparisons,
    /// slice borrowing and membership queries all assume it. Debug builds
    /// verify the ordering; release builds trust the caller (this sits on
    /// the index build's hot path). Returns the id of the stored set — the
    /// same id for an identical set interned earlier.
    ///
    /// # Panics
    ///
    /// Panics when the last id exceeds the capacity (and, in debug builds,
    /// when `ids` is unsorted or has duplicates).
    pub fn intern(&mut self, ids: &[u32]) -> SetId {
        self.intern_hashed(ids, fnv1a(ids))
    }

    /// The content hash [`BitSetInterner::intern`] computes internally.
    /// Worker threads of a parallel memoization pass hash their sets with
    /// this and hand the results to [`BitSetInterner::intern_hashed`], so
    /// the serial interning step on the merge thread does no re-hashing.
    pub fn hash_ids(ids: &[u32]) -> u64 {
        fnv1a(ids)
    }

    /// [`BitSetInterner::intern`] with a caller-precomputed content hash
    /// (`hash` must equal [`BitSetInterner::hash_ids`] of `ids`).
    ///
    /// `ids` must be sorted ascending and duplicate-free — debug builds
    /// verify this; release builds trust the caller (this sits on the
    /// index build's hot path).
    ///
    /// # Panics
    ///
    /// Panics when an id exceeds the capacity (and, in debug builds, when
    /// `ids` is unsorted or has duplicates).
    pub fn intern_hashed(&mut self, ids: &[u32], hash: u64) -> SetId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "interned ids must be sorted and unique"
        );
        if let Some(&last) = ids.last() {
            assert!(
                (last as usize) < self.capacity,
                "id {last} out of capacity {}",
                self.capacity
            );
        }
        debug_assert_eq!(hash, fnv1a(ids), "precomputed hash mismatch");
        self.ensure_dedup();
        match self.by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(first) => {
                let first = *first.get();
                if self.eq_ids(first, ids) {
                    return first;
                }
                for &(h, id) in &self.overflow {
                    if h == hash && self.eq_ids(id, ids) {
                        return id;
                    }
                }
                let id =
                    SetId(u32::try_from(self.sets.len()).expect("interner set count fits u32"));
                let packed = self.pack(ids);
                self.sets.push(packed);
                self.stored_elements += ids.len();
                self.overflow.push((hash, id));
                id
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                let id =
                    SetId(u32::try_from(self.sets.len()).expect("interner set count fits u32"));
                slot.insert(id);
                let packed = self.pack(ids);
                self.sets.push(packed);
                self.stored_elements += ids.len();
                id
            }
        }
    }

    /// Borrows the sorted element slice of set `id` when it is stored
    /// sparsely in an owned arena (`None` for block-packed dense sets
    /// and for view-backed arenas, whose LE bytes cannot be reborrowed
    /// as `u32`s without `unsafe`). The zero-copy fast path of closure
    /// views: a single-component closure *is* its component's interned
    /// set, so the view borrows this slice directly; view-backed callers
    /// take the streaming fallback instead.
    pub fn as_sorted_slice(&self, id: SetId) -> Option<&[u32]> {
        match self.sets[id.index()] {
            CompactSet::Sparse { offset, len } => self
                .arena
                .as_slice()
                .map(|arena| &arena[offset as usize..(offset + len) as usize]),
            CompactSet::Dense { .. } => None,
        }
    }

    /// Number of elements in set `id`.
    pub fn set_len(&self, id: SetId) -> usize {
        match &self.sets[id.index()] {
            CompactSet::Sparse { len, .. } => *len as usize,
            CompactSet::Dense { len, .. } => *len as usize,
        }
    }

    /// Calls `f` for every element of set `id`, ascending.
    pub fn for_each(&self, id: SetId, mut f: impl FnMut(u32)) {
        match &self.sets[id.index()] {
            CompactSet::Sparse { offset, len } => self
                .arena
                .for_each_in(*offset as usize..(offset + len) as usize, f),
            CompactSet::Dense { blocks, .. } => {
                let mut i = 0u32;
                blocks.for_each_in(0..blocks.len(), |block| {
                    let mut bits = block;
                    while bits != 0 {
                        let tz = bits.trailing_zeros();
                        bits &= bits - 1;
                        f(i * 64 + tz);
                    }
                    i += 1;
                });
            }
        }
    }

    /// Unions set `id` into the `seen` scratch set, appending every element
    /// not already present to `out`. The caller owns clearing `seen`
    /// (sparsely, via `out`) between uses.
    ///
    /// # Panics
    ///
    /// Panics when `seen` was not sized to this interner's capacity.
    pub fn union_into(&self, id: SetId, seen: &mut BitSet, out: &mut Vec<u32>) {
        assert_eq!(seen.capacity(), self.capacity, "scratch capacity mismatch");
        self.for_each(id, |v| {
            if seen.insert(v as usize) {
                out.push(v);
            }
        });
    }

    fn pack(&mut self, ids: &[u32]) -> CompactSet {
        // Dense wins once 4 bytes/element exceeds capacity/8 bytes of blocks.
        if ids.len() * 32 >= self.capacity && self.capacity >= 64 {
            let mut blocks = vec![0u64; self.capacity.div_ceil(64)];
            for &v in ids {
                blocks[v as usize / 64] |= 1u64 << (v % 64);
            }
            CompactSet::Dense {
                blocks: U64Arr::Owned(blocks),
                len: ids.len() as u32,
            }
        } else {
            let offset = u32::try_from(self.arena.len()).expect("interner arena fits u32");
            match &mut self.arena {
                U32Arr::Owned(arena) => arena.extend_from_slice(ids),
                // ensure_dedup promoted the arena before any intern.
                U32Arr::View(_) => unreachable!("pack on a view-backed arena"),
            }
            CompactSet::Sparse {
                offset,
                len: ids.len() as u32,
            }
        }
    }

    /// Appends this interner's exact internal layout — capacity, shared
    /// sparse arena, and every set's representation (sparse range or
    /// dense blocks) — as flat little-endian fields. Pair with
    /// [`BitSetInterner::decode_from`]; the round trip is structurally
    /// identical (same ids, same arena offsets, same packing choices).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        snapshot::put_u64(out, self.capacity as u64);
        snapshot::put_u64(out, self.stored_elements as u64);
        self.arena.encode_into(out);
        snapshot::put_u32(
            out,
            u32::try_from(self.sets.len()).expect("interner set count fits u32"),
        );
        for set in &self.sets {
            match set {
                CompactSet::Sparse { offset, len } => {
                    snapshot::put_u8(out, 0);
                    snapshot::put_u32(out, *offset);
                    snapshot::put_u32(out, *len);
                }
                CompactSet::Dense { blocks, len } => {
                    snapshot::put_u8(out, 1);
                    snapshot::put_u32(out, *len);
                    blocks.encode_into(out);
                }
            }
        }
    }

    /// Reconstitutes an interner from [`BitSetInterner::encode_into`]
    /// bytes. Under [`DecodeMode::Copy`] set storage is bulk-decoded and
    /// the dedup lookup maps are re-derived eagerly, by hashing each set
    /// in id order — the same first-wins order the original interning
    /// used, so even `by_hash`/`overflow` come back identical and further
    /// interning behaves exactly as it would on the original. Under
    /// [`DecodeMode::View`] the sparse arena and every dense block run
    /// stay as views into the archive's byte store, and the dedup maps
    /// are deferred until the first intern (read paths never touch them).
    ///
    /// Every structural claim is validated before use in either mode —
    /// sparse ranges against the arena, element order/bounds against the
    /// capacity, dense block counts and popcounts, and the stored-element
    /// total — so a corrupt section yields a typed error, never a panic
    /// or a silently wrong set.
    pub fn decode_from(dec: &mut StoreDec) -> Result<BitSetInterner, SnapshotError> {
        let capacity = usize::try_from(dec.u64()?)
            .map_err(|_| dec.malformed("interner capacity exceeds usize"))?;
        let stored_elements = usize::try_from(dec.u64()?)
            .map_err(|_| dec.malformed("interner stored_elements exceeds usize"))?;
        let arena = dec.u32_arr()?;
        let set_count = dec.u32()? as usize;
        let block_count = capacity.div_ceil(64);
        let mut sets = Vec::with_capacity(set_count.min(dec.remaining() as usize));
        let mut element_total = 0usize;
        for i in 0..set_count {
            let set = match dec.u8()? {
                0 => {
                    let offset = dec.u32()?;
                    let len = dec.u32()?;
                    let end = u64::from(offset) + u64::from(len);
                    if end > arena.len() as u64 {
                        return Err(dec.malformed(format!(
                            "sparse set {i} range {offset}+{len} exceeds arena of {}",
                            arena.len()
                        )));
                    }
                    // One streamed pass: sorted-unique and bounds — the
                    // same validation the copy decode performs, without
                    // materializing the range.
                    let mut prev: Option<u32> = None;
                    arena.try_for_each_in(offset as usize..end as usize, |v| {
                        if prev.is_some_and(|p| p >= v) {
                            return Err(
                                dec.malformed(format!("sparse set {i} is not sorted-unique"))
                            );
                        }
                        if v as usize >= capacity {
                            return Err(dec.malformed(format!(
                                "sparse set {i} has an element out of capacity {capacity}"
                            )));
                        }
                        prev = Some(v);
                        Ok(())
                    })?;
                    CompactSet::Sparse { offset, len }
                }
                1 => {
                    let len = dec.u32()?;
                    let blocks = dec.u64_arr()?;
                    if blocks.len() != block_count {
                        return Err(dec.malformed(format!(
                            "dense set {i} has {} blocks, capacity {capacity} needs {block_count}",
                            blocks.len()
                        )));
                    }
                    let tail_bits = capacity % 64;
                    let mut popcount: u64 = 0;
                    let mut index = 0usize;
                    blocks.try_for_each(|b| {
                        popcount += u64::from(b.count_ones());
                        index += 1;
                        if index == block_count
                            && tail_bits != 0
                            && b & !((1u64 << tail_bits) - 1) != 0
                        {
                            return Err(dec.malformed(format!(
                                "dense set {i} has bits beyond capacity {capacity}"
                            )));
                        }
                        Ok(())
                    })?;
                    if popcount != u64::from(len) {
                        return Err(dec.malformed(format!(
                            "dense set {i} declares {len} elements but blocks hold {popcount}"
                        )));
                    }
                    CompactSet::Dense { blocks, len }
                }
                other => {
                    return Err(
                        dec.malformed(format!("set {i} has unknown representation tag {other}"))
                    );
                }
            };
            element_total += match &set {
                CompactSet::Sparse { len, .. } | CompactSet::Dense { len, .. } => *len as usize,
            };
            sets.push(set);
        }
        if element_total != stored_elements {
            return Err(dec.malformed(format!(
                "stored_elements {stored_elements} disagrees with set contents {element_total}"
            )));
        }
        let mut pool = BitSetInterner {
            capacity,
            sets,
            arena,
            by_hash: HashMap::new(),
            overflow: Vec::new(),
            stored_elements,
            dedup_ready: false,
        };
        if dec.mode() == DecodeMode::Copy {
            pool.rebuild_dedup_maps();
            pool.dedup_ready = true;
        }
        Ok(pool)
    }

    /// Promotes a view-loaded interner to a mutable one: materializes the
    /// arena and rebuilds the dedup maps. No-op once ready.
    fn ensure_dedup(&mut self) {
        if self.dedup_ready {
            return;
        }
        self.arena.make_owned();
        self.rebuild_dedup_maps();
        self.dedup_ready = true;
    }

    /// Re-derives `by_hash`/`overflow` from set storage, in id order —
    /// matching the first-wins insertion order of the original build.
    /// This is the only hashing a snapshot load performs: one FNV fold
    /// per stored element, memory-bandwidth cheap.
    fn rebuild_dedup_maps(&mut self) {
        let mut scratch = Vec::new();
        for index in 0..self.sets.len() {
            let id = SetId(index as u32);
            let hash = match (&self.sets[index], self.arena.as_slice()) {
                (CompactSet::Sparse { offset, len }, Some(arena)) => {
                    fnv1a(&arena[*offset as usize..(offset + len) as usize])
                }
                _ => {
                    scratch.clear();
                    self.for_each(id, |v| scratch.push(v));
                    fnv1a(&scratch)
                }
            };
            match self.by_hash.entry(hash) {
                std::collections::hash_map::Entry::Occupied(_) => self.overflow.push((hash, id)),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(id);
                }
            }
        }
    }

    fn eq_ids(&self, id: SetId, ids: &[u32]) -> bool {
        match &self.sets[id.index()] {
            CompactSet::Sparse { offset, len } => {
                *len as usize == ids.len()
                    && self
                        .arena
                        .iter_range(*offset as usize..(offset + len) as usize)
                        .eq(ids.iter().copied())
            }
            CompactSet::Dense { blocks, len } => {
                *len as usize == ids.len()
                    && ids
                        .iter()
                        .all(|&v| blocks.get(v as usize / 64) & (1u64 << (v % 64)) != 0)
            }
        }
    }
}

/// Structural equality: same capacity, same arena layout, same per-set
/// representations. The dedup maps are derived state (reconstituted
/// deterministically by [`BitSetInterner::decode_from`]) and are not
/// compared. This is the serialization-fidelity contract — two interners
/// built by different insertion orders may hold equal *sets* yet compare
/// unequal here.
impl PartialEq for BitSetInterner {
    fn eq(&self, other: &BitSetInterner) -> bool {
        self.capacity == other.capacity
            && self.stored_elements == other.stored_elements
            && self.arena == other.arena
            && self.sets == other.sets
    }
}

/// FNV-1a folded one `u32` element at a time (not per byte): the hash is
/// purely internal to the dedup map, so trading byte-granularity for a
/// 4× shorter multiply chain is free.
fn fnv1a(ids: &[u32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &v in ids {
        h = (h ^ u64::from(v)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of range is absent");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        assert!(!a.union_with(&b), "second union is a no-op");
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![50, 99]);
    }

    #[test]
    fn iteration_order_and_clear() {
        let mut s = BitSet::new(200);
        for v in [199, 3, 77, 64, 63] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 77, 199]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn interner_dedupes_identical_sets() {
        let mut pool = BitSetInterner::new(1000);
        let a = pool.intern(&[1, 5, 900]);
        let b = pool.intern(&[1, 5, 900]);
        let c = pool.intern(&[1, 5]);
        assert_eq!(a, b, "identical sets share one id");
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stored_elements(), 5);
        assert_eq!(pool.set_len(a), 3);
        let mut got = Vec::new();
        pool.for_each(a, |v| got.push(v));
        assert_eq!(got, vec![1, 5, 900]);
    }

    #[test]
    fn interner_dense_representation_roundtrips() {
        let mut pool = BitSetInterner::new(256);
        // 0..128 is dense enough (128 * 32 >= 256) to be packed as blocks.
        let big: Vec<u32> = (0..128).collect();
        let id = pool.intern(&big);
        assert_eq!(pool.set_len(id), 128);
        let mut got = Vec::new();
        pool.for_each(id, |v| got.push(v));
        assert_eq!(got, big);
        // Dense and sparse storage dedupe against each other consistently.
        assert_eq!(pool.intern(&big), id);
        let small = pool.intern(&[3, 4]);
        assert_ne!(small, id);
    }

    #[test]
    fn interner_union_into_appends_fresh_elements() {
        let mut pool = BitSetInterner::new(100);
        let a = pool.intern(&[2, 7, 40]);
        let b = pool.intern(&[7, 41]);
        let mut seen = BitSet::new(100);
        let mut out = Vec::new();
        pool.union_into(a, &mut seen, &mut out);
        pool.union_into(b, &mut seen, &mut out);
        assert_eq!(out, vec![2, 7, 40, 41], "7 appended once");
    }

    #[test]
    fn interner_sorted_slice_for_sparse_only() {
        let mut pool = BitSetInterner::new(256);
        let sparse = pool.intern(&[3, 9, 200]);
        assert_eq!(pool.as_sorted_slice(sparse), Some(&[3u32, 9, 200][..]));
        let big: Vec<u32> = (0..128).collect();
        let dense = pool.intern(&big);
        assert_eq!(pool.as_sorted_slice(dense), None, "dense sets are blocks");
    }

    #[test]
    fn intern_hashed_dedupes_against_intern() {
        let mut pool = BitSetInterner::new(100);
        let a = pool.intern(&[1, 2, 50]);
        let hash = BitSetInterner::hash_ids(&[1, 2, 50]);
        assert_eq!(pool.intern_hashed(&[1, 2, 50], hash), a);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn interner_empty_set() {
        let mut pool = BitSetInterner::new(10);
        let a = pool.intern(&[]);
        let b = pool.intern(&[]);
        assert_eq!(a, b);
        assert_eq!(pool.set_len(a), 0);
        assert_eq!(pool.stored_elements(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn interner_rejects_unsorted_ids() {
        BitSetInterner::new(10).intern(&[5, 3]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn interner_rejects_out_of_range_ids() {
        BitSetInterner::new(10).intern(&[10]);
    }

    fn sample_pool() -> (BitSetInterner, SetId, SetId, SetId, Vec<u32>) {
        let mut pool = BitSetInterner::new(256);
        let a = pool.intern(&[1, 5, 200]);
        let dense: Vec<u32> = (0..128).collect();
        let b = pool.intern(&dense);
        let c = pool.intern(&[]);
        (pool, a, b, c, dense)
    }

    fn decode(bytes: Vec<u8>, mode: DecodeMode) -> Result<BitSetInterner, SnapshotError> {
        let section = perils_util::snapshot::Section::from_vec(bytes, mode);
        let mut dec = StoreDec::new(&section, "POOL");
        let pool = BitSetInterner::decode_from(&mut dec)?;
        dec.finish()?;
        Ok(pool)
    }

    #[test]
    fn interner_codec_round_trips_exact_layout() {
        let (pool, a, b, c, dense) = sample_pool();
        let mut bytes = Vec::new();
        pool.encode_into(&mut bytes);
        let loaded = decode(bytes, DecodeMode::Copy).expect("decodes");
        assert_eq!(loaded, pool, "structural equality after round trip");
        assert_eq!(loaded.set_len(a), 3);
        assert_eq!(loaded.as_sorted_slice(a), Some(&[1u32, 5, 200][..]));
        let mut got = Vec::new();
        loaded.for_each(b, |v| got.push(v));
        assert_eq!(got, dense);
        // The rebuilt dedup maps keep interning consistent: re-interning
        // an existing set returns its original id.
        let mut loaded = loaded;
        assert_eq!(loaded.intern(&[1, 5, 200]), a);
        assert_eq!(loaded.intern(&dense), b);
        assert_eq!(loaded.intern(&[]), c);
        assert_eq!(loaded.len(), pool.len(), "no duplicates after reload");
    }

    #[test]
    fn interner_view_decode_matches_copy_and_promotes_on_intern() {
        let (pool, a, b, c, dense) = sample_pool();
        let mut bytes = Vec::new();
        pool.encode_into(&mut bytes);
        let viewed = decode(bytes.clone(), DecodeMode::View).expect("view decodes");
        assert_eq!(viewed, pool, "views compare element-wise equal");
        assert_eq!(
            viewed.as_sorted_slice(a),
            None,
            "view arenas cannot lend slices"
        );
        assert_eq!(viewed.set_len(a), 3);
        let mut got = Vec::new();
        viewed.for_each(a, |v| got.push(v));
        assert_eq!(got, vec![1, 5, 200]);
        got.clear();
        viewed.for_each(b, |v| got.push(v));
        assert_eq!(got, dense, "dense views stream identically");
        let mut union = Vec::new();
        let mut seen = BitSet::new(256);
        viewed.union_into(a, &mut seen, &mut union);
        assert_eq!(union, vec![1, 5, 200]);
        // A view-backed interner re-encodes byte-identically.
        let mut re = Vec::new();
        viewed.encode_into(&mut re);
        assert_eq!(re, bytes, "view encode is byte-stable");
        // First intern promotes the arena and rebuilds dedup maps.
        let mut viewed = viewed;
        assert_eq!(viewed.intern(&[1, 5, 200]), a);
        assert_eq!(viewed.intern(&dense), b);
        assert_eq!(viewed.intern(&[]), c);
        let d = viewed.intern(&[9, 17]);
        assert_eq!(viewed.len(), pool.len() + 1);
        assert_eq!(viewed.as_sorted_slice(d), Some(&[9u32, 17][..]));
        assert_eq!(
            viewed.as_sorted_slice(a),
            Some(&[1u32, 5, 200][..]),
            "promotion materializes the arena for old sets too"
        );
    }

    #[test]
    fn interner_codec_rejects_structural_corruption() {
        let mut pool = BitSetInterner::new(256);
        pool.intern(&[1, 5, 200]);
        pool.intern(&(0..128).collect::<Vec<u32>>());
        let mut bytes = Vec::new();
        pool.encode_into(&mut bytes);
        for byte in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                for mode in [DecodeMode::Copy, DecodeMode::View] {
                    let mut bad = bytes.clone();
                    bad[byte] ^= flip;
                    // Must never panic; errors or a structurally valid
                    // (but different) interner are both acceptable — in
                    // the full archive the section checksum rejects the
                    // latter.
                    if let Ok(pool2) = decode(bad, mode) {
                        let _ = pool2.len();
                    }
                }
            }
        }
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 9]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }
}
