//! A fixed-capacity bitset over `u64` blocks.
//!
//! Reachability and closure computations over survey-scale graphs need cheap
//! set union and membership; this is the usual packed representation.

/// A fixed-capacity set of `usize` values in `[0, capacity)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (block, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (block, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        present
    }

    /// Membership test (out-of-range values are absent).
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.blocks[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// In-place union; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(i * 64 + tz)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let capacity = values.iter().max().map_or(0, |&m| m + 1);
        let mut set = BitSet::new(capacity);
        for v in values {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of range is absent");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        assert!(!a.union_with(&b), "second union is a no-op");
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![50, 99]);
    }

    #[test]
    fn iteration_order_and_clear() {
        let mut s = BitSet::new(200);
        for v in [199, 3, 77, 64, 63] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 77, 199]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 9]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }
}
