//! Traversals: BFS/DFS, reachability, topological sort, transitive closure.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};

/// The set of nodes reachable from `start` (including `start`), via BFS.
pub fn reachable_from<N>(graph: &DiGraph<N>, start: NodeId) -> BitSet {
    reachable_from_all(graph, std::iter::once(start))
}

/// The set of nodes reachable from any of `starts` (including them).
pub fn reachable_from_all<N>(
    graph: &DiGraph<N>,
    starts: impl IntoIterator<Item = NodeId>,
) -> BitSet {
    let mut seen = BitSet::new(graph.node_count());
    let mut queue: Vec<NodeId> = Vec::new();
    for start in starts {
        if seen.insert(start.index()) {
            queue.push(start);
        }
    }
    while let Some(node) = queue.pop() {
        for &next in graph.out_neighbors(node) {
            if seen.insert(next.index()) {
                queue.push(next);
            }
        }
    }
    seen
}

/// BFS distances (edge counts) from `start`; unreachable nodes get `None`.
pub fn bfs_distances<N>(graph: &DiGraph<N>, start: NodeId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; graph.node_count()];
    dist[start.index()] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have distances");
        for &next in graph.out_neighbors(node) {
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// DFS postorder from `start` (each node once, children before parents).
pub fn dfs_postorder<N>(graph: &DiGraph<N>, start: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(graph.node_count());
    let mut order = Vec::new();
    // Iterative DFS with an explicit (node, child-cursor) stack.
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    if seen.insert(start.index()) {
        stack.push((start, 0));
    }
    while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
        let neighbors = graph.out_neighbors(node);
        if *cursor < neighbors.len() {
            let next = neighbors[*cursor];
            *cursor += 1;
            if seen.insert(next.index()) {
                stack.push((next, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    order
}

/// Kahn topological sort. Returns `None` when the graph has a cycle.
pub fn topo_sort<N>(graph: &DiGraph<N>) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| graph.in_degree(NodeId(i as u32))).collect();
    let mut ready: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|&v| in_deg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = ready.pop() {
        order.push(node);
        for &next in graph.out_neighbors(node) {
            in_deg[next.index()] -= 1;
            if in_deg[next.index()] == 0 {
                ready.push(next);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A shortest (fewest-edges) path from `from` to `to`, both inclusive,
/// via BFS with parent reconstruction. `None` when `to` is unreachable
/// from `from`.
///
/// Used by the lint engine to extract cut-witness paths from delegation
/// graphs: the evidence for a `choke-point` finding is a concrete
/// source → cut-server → target path, which is exactly two of these.
pub fn shortest_path<N>(graph: &DiGraph<N>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut seen = BitSet::new(graph.node_count());
    seen.insert(from.index());
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        for &next in graph.out_neighbors(node) {
            if seen.insert(next.index()) {
                parent[next.index()] = Some(node);
                if next == to {
                    let mut path = vec![to];
                    let mut cursor = to;
                    while let Some(p) = parent[cursor.index()] {
                        path.push(p);
                        cursor = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

/// Per-node transitive closure: `closure[v]` contains every node reachable
/// from `v` (including `v`).
///
/// Implemented with one BFS per node over bitsets; suitable for the
/// per-name delegation graphs (tens to hundreds of nodes). For whole-survey
/// closures use [`crate::scc::condensation`] first.
pub fn transitive_closure<N>(graph: &DiGraph<N>) -> Vec<BitSet> {
    graph.nodes().map(|v| reachable_from(graph, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<()>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn reachability() {
        let (g, [a, b, c, d]) = diamond();
        let r = reachable_from(&g, a);
        assert_eq!(r.len(), 4);
        let r = reachable_from(&g, b);
        assert!(r.contains(b.index()) && r.contains(d.index()));
        assert!(!r.contains(a.index()) && !r.contains(c.index()));
        let r = reachable_from_all(&g, [b, c]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn distances() {
        let (g, [a, b, c, d]) = diamond();
        let dist = bfs_distances(&g, a);
        assert_eq!(dist[a.index()], Some(0));
        assert_eq!(dist[b.index()], Some(1));
        assert_eq!(dist[c.index()], Some(1));
        assert_eq!(dist[d.index()], Some(2));
        let dist_from_d = bfs_distances(&g, d);
        assert_eq!(dist_from_d[a.index()], None);
    }

    #[test]
    fn postorder_parents_last() {
        let (g, [a, _, _, d]) = diamond();
        let order = dfs_postorder(&g, a);
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), a);
        assert_eq!(order[0], d, "deepest node first");
    }

    #[test]
    fn topo_sort_dag_and_cycle() {
        let (g, [a, b, c, d]) = diamond();
        let order = topo_sort(&g).expect("diamond is a DAG");
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));

        let mut cyclic = DiGraph::<()>::new();
        let x = cyclic.add_node(());
        let y = cyclic.add_node(());
        cyclic.add_edge(x, y);
        cyclic.add_edge(y, x);
        assert!(topo_sort(&cyclic).is_none());
    }

    #[test]
    fn closure_includes_self_and_descendants() {
        let (g, [a, b, _, d]) = diamond();
        let closure = transitive_closure(&g);
        assert_eq!(closure[a.index()].len(), 4);
        assert_eq!(closure[d.index()].len(), 1);
        assert!(closure[b.index()].contains(d.index()));
        assert!(!closure[b.index()].contains(a.index()));
    }

    #[test]
    fn shortest_path_finds_a_minimal_route() {
        let (g, [a, b, c, d]) = diamond();
        let path = shortest_path(&g, a, d).expect("reachable");
        assert_eq!(path.len(), 3, "two hops through either arm");
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), d);
        assert!(path[1] == b || path[1] == c);
        assert_eq!(shortest_path(&g, a, a), Some(vec![a]));
        assert_eq!(shortest_path(&g, d, a), None, "edges are directed");
    }

    #[test]
    fn handles_cycles_in_reachability() {
        let mut g = DiGraph::<()>::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(b, c);
        let r = reachable_from(&g, a);
        assert_eq!(r.len(), 3);
        let order = dfs_postorder(&g, a);
        assert_eq!(order.len(), 3, "cycle must not loop forever");
    }
}
