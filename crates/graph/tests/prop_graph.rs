//! Property-based tests for the graph substrate, centered on the min vertex
//! cut — the primitive the paper's hijack analysis rests on. On random small
//! graphs we verify the cut against an exhaustive search.

use proptest::prelude::*;

use perils_graph::digraph::{DiGraph, NodeId};
use perils_graph::flow::min_vertex_cut;
use perils_graph::scc::{
    canonical_scc, condensation, fwbw_scc_with, parallel_scc_with, tarjan_scc, tarjan_scc_with,
};
use perils_graph::traversal::{reachable_from, topo_sort, transitive_closure};

/// A random directed graph on `n` nodes given an edge bitmap.
fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> DiGraph<()> {
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for &(u, v) in edges {
        g.add_edge(ids[u % n], ids[v % n]);
    }
    g
}

fn arb_graph(max_n: usize, max_e: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..=max_n)
        .prop_flat_map(move |n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..=max_e)))
}

/// Does `s` reach `t` after removing `removed`?
fn reaches_avoiding(g: &DiGraph<()>, s: NodeId, t: NodeId, removed: u32) -> bool {
    if (removed >> s.index()) & 1 == 1 || (removed >> t.index()) & 1 == 1 {
        // We never consider removing endpoints.
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![s];
    seen[s.index()] = true;
    while let Some(v) = stack.pop() {
        if v == t {
            return true;
        }
        for &n in g.out_neighbors(v) {
            if (removed >> n.index()) & 1 == 0 && !seen[n.index()] {
                seen[n.index()] = true;
                stack.push(n);
            }
        }
    }
    false
}

/// Brute-force minimum vertex cut size by trying all subsets of interior
/// nodes. `None` if even removing all interior nodes keeps s→t connected.
fn brute_force_cut_size(g: &DiGraph<()>, s: NodeId, t: NodeId) -> Option<usize> {
    let n = g.node_count();
    assert!(n <= 12, "brute force limited to small graphs");
    let interior: Vec<usize> = (0..n)
        .filter(|&i| i != s.index() && i != t.index())
        .collect();
    let mut best: Option<usize> = None;
    for mask in 0u32..(1 << interior.len()) {
        let mut removed = 0u32;
        for (bit, &node) in interior.iter().enumerate() {
            if (mask >> bit) & 1 == 1 {
                removed |= 1 << node;
            }
        }
        if !reaches_avoiding(g, s, t, removed) {
            let size = mask.count_ones() as usize;
            if best.is_none_or(|b| size < b) {
                best = Some(size);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// min_vertex_cut matches exhaustive search on small random graphs,
    /// and the returned vertex set really disconnects s from t.
    #[test]
    fn vertex_cut_matches_brute_force((n, edges) in arb_graph(7, 18)) {
        let g = graph_from_edges(n, &edges);
        let s = NodeId(0);
        let t = NodeId((n - 1) as u32);
        let brute = brute_force_cut_size(&g, s, t);
        match min_vertex_cut(&g, s, t, |_| 1) {
            Some(cut) => {
                prop_assert_eq!(Some(cut.total_weight as usize), brute,
                    "flow cut size vs brute force");
                prop_assert_eq!(cut.cut.len() as u64, cut.total_weight);
                // Removing the cut must disconnect.
                let mut removed = 0u32;
                for v in &cut.cut {
                    removed |= 1 << v.index();
                }
                prop_assert!(!reaches_avoiding(&g, s, t, removed),
                    "returned cut fails to disconnect");
            }
            None => prop_assert_eq!(brute, None, "flow says uncuttable"),
        }
    }

    /// Weighted cuts never exceed the unit-cut weight bound and respect
    /// weights: making one node free never increases total weight.
    #[test]
    fn vertex_cut_weight_monotonicity((n, edges) in arb_graph(7, 18), free in 1usize..6) {
        let g = graph_from_edges(n, &edges);
        let s = NodeId(0);
        let t = NodeId((n - 1) as u32);
        let base = min_vertex_cut(&g, s, t, |_| 2);
        let discounted = min_vertex_cut(&g, s, t, |v| if v.index() == free % n { 1 } else { 2 });
        if let (Some(a), Some(b)) = (base, discounted) {
            prop_assert!(b.total_weight <= a.total_weight);
        }
    }

    /// Transitive closure agrees with per-node BFS reachability.
    #[test]
    fn closure_matches_reachability((n, edges) in arb_graph(8, 24)) {
        let g = graph_from_edges(n, &edges);
        let closure = transitive_closure(&g);
        for v in g.nodes() {
            let direct = reachable_from(&g, v);
            prop_assert_eq!(&closure[v.index()], &direct);
        }
    }

    /// SCC invariants: components partition the nodes; two nodes share a
    /// component iff they reach each other; the condensation is acyclic.
    #[test]
    fn scc_invariants((n, edges) in arb_graph(8, 24)) {
        let g = graph_from_edges(n, &edges);
        let scc = tarjan_scc(&g);
        let total: usize = scc.components.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        let closure = transitive_closure(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                let same = scc.component_of[a.index()] == scc.component_of[b.index()];
                let mutual = closure[a.index()].contains(b.index())
                    && closure[b.index()].contains(a.index());
                prop_assert_eq!(same, mutual, "SCC vs mutual reachability for {:?},{:?}", a, b);
            }
        }
        let (dag, _) = condensation(&g);
        prop_assert!(topo_sort(&dag).is_some(), "condensation must be a DAG");
    }

    /// The parallel SCC (trim + FW-BW) agrees with canonicalized Tarjan on
    /// random graphs at every thread count: same partition, same canonical
    /// numbering, and the canonical ids stay reverse topological.
    #[test]
    fn parallel_scc_equals_canonical_tarjan((n, edges) in arb_graph(10, 32)) {
        let g = graph_from_edges(n, &edges);
        let degree = |u: usize| g.out_degree(NodeId(u as u32));
        let neighbor = |u: usize, k: usize| g.out_neighbors(NodeId(u as u32))[k].index();
        let reference = canonical_scc(
            &tarjan_scc_with(g.node_count(), degree, neighbor),
            degree,
            neighbor,
        );
        // fwbw_scc_with pins the trim+FW-BW strategy regardless of the
        // machine's core count; parallel_scc_with (adaptive dispatch) may
        // keep raw Tarjan numbering on small machines, so its partition is
        // normalized through canonical_scc before comparing.
        for threads in [1usize, 2, 8] {
            let parallel = fwbw_scc_with(g.node_count(), degree, neighbor, threads);
            prop_assert_eq!(&parallel.component_of, &reference.component_of,
                "partition/numbering diverged at {} threads", threads);
            prop_assert_eq!(&parallel.components, &reference.components,
                "member lists diverged at {} threads", threads);
            let adaptive = parallel_scc_with(g.node_count(), degree, neighbor, threads);
            let normalized = canonical_scc(&adaptive, degree, neighbor);
            prop_assert_eq!(&normalized.component_of, &reference.component_of,
                "adaptive dispatch partition diverged at {} threads", threads);
            for (from, to) in g.edges() {
                let (cf, ct) = (adaptive.component_of[from.index()], adaptive.component_of[to.index()]);
                prop_assert!(ct <= cf, "adaptive ids must be reverse topological");
            }
        }
        for (from, to) in g.edges() {
            let (cf, ct) = (reference.component_of[from.index()], reference.component_of[to.index()]);
            if cf != ct {
                prop_assert!(ct < cf, "canonical ids must be reverse topological");
            }
        }
    }

    /// Max-flow value equals min *edge* cut on unit-capacity layered
    /// graphs (weak duality sanity: flow through any graph never exceeds
    /// the out-degree of the source or in-degree of the sink).
    #[test]
    fn flow_bounded_by_degree((n, edges) in arb_graph(8, 24)) {
        let g = graph_from_edges(n, &edges);
        let s = NodeId(0);
        let t = NodeId((n - 1) as u32);
        let mut net = perils_graph::flow::FlowNetwork::new(n);
        for (u, v) in g.edges() {
            net.add_edge(u.index(), v.index(), 1);
        }
        let flow = net.max_flow(s.index(), t.index());
        prop_assert!(flow <= g.out_degree(s) as u64);
        prop_assert!(flow <= g.in_degree(t) as u64);
    }
}
