//! A minimal HTTP/1.0-subset wire protocol over blocking `std::net`.
//!
//! Just enough HTTP for the daemon's three planes: a request line,
//! headers, an optional `Content-Length` body, and keep-alive. No
//! chunked encoding, no multipart, no TLS — `perilsd` speaks to `curl`,
//! to the integration tests' hand-rolled client, and to a Prometheus
//! scraper, all of which live comfortably inside this subset.
//!
//! Hard limits keep a misbehaving peer from holding a worker hostage:
//! request line and each header ≤ 8 KiB, ≤ 64 headers, body ≤ 64 KiB.
//! Anything outside the subset is a `400` and the connection closes.

use std::io::{self, BufRead, Read, Write};

/// Maximum request-line / header-line length in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers.
const MAX_HEADERS: usize = 64;
/// Maximum request-body length in bytes.
const MAX_BODY: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Whether the client asked to keep the connection open
    /// (`Connection: keep-alive`, or HTTP/1.1 without `Connection: close`).
    pub keep_alive: bool,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RequestError {
    /// Clean end of stream before a request line — the peer hung up.
    Eof,
    /// The bytes are not inside the supported subset.
    Malformed(&'static str),
    /// Transport error (timeout, reset).
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Eof => write!(f, "end of stream"),
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines over
/// [`MAX_LINE`]. Returns `None` on clean EOF at a line boundary.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    let mut limited = reader.take((MAX_LINE + 1) as u64);
    match limited.read_until(b'\n', &mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(RequestError::Io(e)),
    }
    if line.len() > MAX_LINE {
        return Err(RequestError::Malformed("line too long"));
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Malformed("non-utf8 header bytes"))
}

/// Reads and parses one request. `Err(RequestError::Eof)` means the
/// peer closed the connection cleanly between requests.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let request_line = match read_line(reader)? {
        None => return Err(RequestError::Eof),
        Some(line) if line.is_empty() => return Err(RequestError::Malformed("empty request line")),
        Some(line) => line,
    };
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(RequestError::Malformed("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("unsupported protocol version"));
    }
    let http11 = version == "HTTP/1.1";

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed("request target must be absolute"));
    }

    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    let mut saw_blank_line = false;
    for _ in 0..=MAX_HEADERS {
        let line = match read_line(reader)? {
            None => return Err(RequestError::Malformed("eof inside headers")),
            Some(line) => line,
        };
        if line.is_empty() {
            saw_blank_line = true;
            break;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without colon"))?;
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        match key.as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| RequestError::Malformed("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(RequestError::Malformed("body too large"));
                }
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            _ => {}
        }
    }
    // Erroring (and closing) matters here: falling through would read
    // the excess header bytes as the body / next request line and
    // desync the connection.
    if !saw_blank_line {
        return Err(RequestError::Malformed("too many headers"));
    }

    let keep_alive = match connection.as_deref() {
        Some("keep-alive") => true,
        Some("close") => false,
        _ => http11,
    };

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(RequestError::Io)?;
    }

    Ok(Request {
        method,
        path,
        query,
        keep_alive,
        body,
    })
}

/// One response: status, content type, body. Serialization appends the
/// `Connection` header the daemon decides per request (keep-alive ends
/// when the client asks for `close` or the daemon is draining).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response (the `/metrics` exposition).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// A JSON error envelope: `{"error":"<message>"}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        perils_util::json::push_json_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Serializes the response. The status line says `HTTP/1.0` — the
    /// served subset — with an explicit `Connection` header so both
    /// 1.0 and 1.1 clients agree on connection reuse. `include_body`
    /// is `false` for `HEAD` requests: the head (with the real
    /// `Content-Length`) goes out, the body bytes do not — sending
    /// them would desync a keep-alive client's next response.
    pub fn write_to(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
        include_body: bool,
    ) -> io::Result<()> {
        let head = format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        writer.write_all(head.as_bytes())?;
        if include_body {
            writer.write_all(self.body.as_bytes())?;
        }
        writer.flush()
    }
}

/// Reason phrases for the statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_get_with_query_and_keep_alive() {
        let req = parse(b"GET /names?limit=5 HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/names");
        assert_eq!(req.query.as_deref(), Some("limit=5"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn http11_defaults_to_keep_alive_and_close_overrides() {
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").expect("parses").keep_alive);
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .expect("parses")
                .keep_alive
        );
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").expect("parses").keep_alive);
    }

    #[test]
    fn reads_content_length_bodies_exactly() {
        let req = parse(b"POST /reload HTTP/1.0\r\nContent-Length: 12\r\n\r\n{\"seed\":123}")
            .expect("parses");
        assert_eq!(req.body, b"{\"seed\":123}");
    }

    #[test]
    fn clean_eof_is_distinguished_from_garbage() {
        assert!(matches!(parse(b""), Err(RequestError::Eof)));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_up_front() {
        let huge = format!(
            "POST / HTTP/1.0\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(RequestError::Malformed("body too large"))
        ));
    }

    #[test]
    fn too_many_headers_is_an_error_not_a_desync() {
        let mut request = String::from("GET / HTTP/1.0\r\n");
        for i in 0..=MAX_HEADERS {
            request.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        request.push_str("\r\n");
        assert!(matches!(
            parse(request.as_bytes()),
            Err(RequestError::Malformed("too many headers"))
        ));
        // Exactly MAX_HEADERS headers still parse.
        let mut request = String::from("GET / HTTP/1.0\r\n");
        for i in 0..MAX_HEADERS {
            request.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        request.push_str("\r\n");
        assert!(parse(request.as_bytes()).is_ok());
    }

    #[test]
    fn responses_serialize_with_explicit_connection_header() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out, true, true)
            .expect("writes");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn head_serialization_keeps_content_length_but_omits_the_body() {
        let mut out = Vec::new();
        Response::json(200, "{\"k\":1}".to_string())
            .write_to(&mut out, true, false)
            .expect("writes");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body bytes after the head");
    }
}
