//! TCB-as-a-service: the long-running query daemon behind `perilsd`.
//!
//! The batch CLIs answer "what is this name's trusted computing base,
//! and is it hijackable?" by re-running a whole survey. This crate keeps
//! a built world warm instead: a [`snapshot::WorldSnapshot`] bundles the
//! [`perils_core::universe::Universe`], its
//! [`perils_core::closure::DependencyIndex`], the shared
//! [`perils_core::lint::LintIndex`] facts and the cached figure sweep
//! behind one atomically swappable `Arc`, and a [`daemon::Daemon`]
//! serves per-name queries out of it at interactive latency over a
//! minimal HTTP/1.0-subset protocol on [`std::net::TcpListener`] — no
//! async runtime, vendor shims only.
//!
//! Three planes:
//!
//! * **data** — `GET /name/<name>` (closure, TCB tally, min-cut,
//!   hijackable verdict, per-subject lint diagnostics with evidence
//!   chains), `GET /zone/<zone>`, `GET /names`, `GET /figures` (the
//!   cached sweep). Responses are byte-identical for a fixed snapshot
//!   at every `--threads` choice — the repo's standing determinism
//!   contract extends to the wire.
//! * **control** — `POST /reload` rebuilds the next snapshot from the
//!   streamed [`perils_survey::engine::WorldSource`] path on a
//!   dedicated thread and swaps it in without blocking readers
//!   (admission-gated to one pending rebuild; excess posts answer
//!   `409`); `POST /shutdown` drains queued connections and exits.
//! * **observability** — `GET /healthz`, `GET /metrics` (Prometheus
//!   text exposition; every field is documented in `OBSERVABILITY.md`).

#![forbid(unsafe_code)]

pub mod daemon;
pub mod http;
pub mod metrics;
pub mod query;
pub mod snapshot;

pub use daemon::{Daemon, ServeSummary, ServiceConfig};
pub use metrics::{Endpoint, Metrics};
pub use snapshot::{SnapshotStats, SnapshotStore, WorldSnapshot, WorldSpec};
