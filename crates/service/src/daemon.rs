//! The daemon: acceptor, worker pool, reloader — all scoped threads,
//! no async runtime.
//!
//! ```text
//!             accept()              ConnQueue (bounded)
//!  clients ──────────────▶ acceptor ───────────────────▶ workers (N)
//!                              │                            │ each owns a cached
//!                              │ POST /shutdown sets        │ (epoch, ClosureWorkspace)
//!                              ▼ the drain flag             ▼
//!                         stops accepting          route → query plane
//!                                                           │ POST /reload
//!                                                           ▼
//!                                                  reloader thread: build
//!                                                  next snapshot, swap
//! ```
//!
//! Everything runs inside one `crossbeam::thread::scope`, so threads
//! borrow the daemon directly — no `'static` gymnastics, no leaked
//! handles. Shutdown is cooperative: `POST /shutdown` (or
//! [`Daemon::trigger_shutdown`]) flips a flag; the acceptor stops
//! accepting and closes the queue; workers drain what was already
//! queued, answer in-flight keep-alive requests with
//! `Connection: close`, and exit; the reloader exits when the last
//! worker drops its channel sender.

use crate::http::{read_request, Request, RequestError, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::query;
use crate::snapshot::{SnapshotStore, WorldSnapshot, WorldSpec};
use perils_core::closure::ClosureWorkspace;
use perils_core::lint::RuleRegistry;
use perils_util::json;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex as SpecMutex;

/// How long the acceptor sleeps when `accept` has nothing for it.
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// Per-connection socket read timeout: an idle keep-alive peer is
/// dropped after this long so a worker is never parked forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Daemon configuration (the `perilsd` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; also the thread count snapshot builds use.
    /// Clamped to `1..=16` like the survey engine.
    pub threads: usize,
    /// Pending-connection queue cap; beyond it the acceptor answers
    /// `503` immediately instead of queueing.
    pub queue_cap: usize,
    /// Whether snapshot builds run the full figure sweep (serving
    /// `GET /figures`); disable for pure query serving.
    pub figures: bool,
    /// Byte-store backend for `.psa` archive boots and snapshot-served
    /// reloads (`--snapshot-backend`): `Heap` keeps one resident buffer
    /// the flat sections view into, `Paged` bounds residency with a
    /// page cache, `Copy` materializes everything like a built world.
    pub backend: perils_survey::SnapshotBackend,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 16),
            queue_cap: 1024,
            figures: true,
            backend: perils_survey::SnapshotBackend::Heap,
        }
    }
}

/// What `serve` reports after a clean drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Requests served over the daemon's lifetime.
    pub requests: u64,
    /// Snapshot reloads completed.
    pub reloads: u64,
}

/// A reload order from the control plane.
struct ReloadRequest {
    /// Reseed the (synthetic) spec before rebuilding.
    seed: Option<u64>,
    /// Swap in a prebuilt `.psa` archive instead of rebuilding —
    /// O(read) instead of O(rebuild).
    snapshot: Option<String>,
}

/// The bounded hand-off between the acceptor and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Queues a connection, or hands it back when the queue is at cap
    /// (the acceptor answers `503` itself).
    fn push(&self, conn: TcpStream, metrics: &Metrics) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        if state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back(conn);
        metrics.set_queue_depth(state.conns.len());
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// *and* drained — the worker exit condition.
    fn pop(&self, metrics: &Metrics) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(conn) = state.conns.pop_front() {
                metrics.set_queue_depth(state.conns.len());
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue wait");
        }
    }

    /// Closes the queue: workers drain the backlog, then exit.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// The long-running service: one warm snapshot store, shared counters,
/// and the serving loop.
pub struct Daemon {
    spec: SpecMutex<WorldSpec>,
    store: SnapshotStore,
    rules: RuleRegistry,
    metrics: Metrics,
    config: ServiceConfig,
    shutdown: AtomicBool,
    reloading: AtomicBool,
    requests_served: AtomicU64,
}

impl Daemon {
    /// Builds the boot snapshot (epoch 1) and wraps it in a daemon
    /// ready to `serve`.
    pub fn boot(spec: WorldSpec, config: ServiceConfig) -> Daemon {
        let mut config = config;
        config.threads = config.threads.clamp(1, 16);
        let snapshot = WorldSnapshot::build(&spec, 1, config.threads, config.figures);
        Daemon {
            spec: SpecMutex::new(spec),
            store: SnapshotStore::new(snapshot),
            rules: RuleRegistry::builtin(),
            metrics: Metrics::new(),
            config,
            shutdown: AtomicBool::new(false),
            reloading: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
        }
    }

    /// Boots epoch 1 from a `.psa` snapshot archive instead of building
    /// — the instant-restart path. `spec` is kept for later plain
    /// `POST /reload`s (which rebuild from scratch); snapshot-served
    /// reloads never touch it.
    pub fn boot_from_archive(
        spec: WorldSpec,
        config: ServiceConfig,
        path: &str,
    ) -> Result<Daemon, perils_util::snapshot::SnapshotError> {
        let mut config = config;
        config.threads = config.threads.clamp(1, 16);
        let snapshot = WorldSnapshot::load_archive(path, 1, config.backend)?;
        Ok(Daemon {
            spec: SpecMutex::new(spec),
            store: SnapshotStore::new(snapshot),
            rules: RuleRegistry::builtin(),
            metrics: Metrics::new(),
            config,
            shutdown: AtomicBool::new(false),
            reloading: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
        })
    }

    /// The snapshot store (tests and the bench read epochs directly).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The shared counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The effective configuration (after clamping).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Asks the serving loop to drain and exit (what `POST /shutdown`
    /// calls; exposed for embedding).
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serves until shutdown, then drains and returns. The calling
    /// thread becomes the acceptor; workers and the reloader are scoped
    /// threads, so everything is joined before this returns.
    pub fn serve(&self, listener: TcpListener) -> io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        let queue = ConnQueue::new(self.config.queue_cap);
        let (reload_tx, reload_rx) = mpsc::channel::<ReloadRequest>();

        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| self.reload_loop(reload_rx));
            for _ in 0..self.config.threads {
                let worker_tx = reload_tx.clone();
                let queue = &queue;
                scope.spawn(move |_| self.worker_loop(queue, worker_tx));
            }
            // Workers hold the only senders now: when the last worker
            // exits, the reloader's `recv` fails and it exits too.
            drop(reload_tx);

            while !self.is_shutting_down() {
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        self.metrics.connection_opened();
                        if let Err(conn) = queue.push(conn, &self.metrics) {
                            self.metrics.queue_rejected();
                            let mut conn = conn;
                            let _ = Response::error(503, "connection queue full")
                                .write_to(&mut conn, false, true);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                }
            }
            queue.close();
            Ok(())
        })
        .expect("service thread panicked")?;

        Ok(ServeSummary {
            connections: self.metrics.connections(),
            requests: self.requests_served.load(Ordering::Relaxed),
            reloads: self.metrics.reloads(),
        })
    }

    /// The reloader: builds the next generation and swaps it in.
    /// Queries keep being answered from the old snapshot for the whole
    /// build; the swap itself is O(1) under a write lock.
    fn reload_loop(&self, rx: mpsc::Receiver<ReloadRequest>) {
        while let Ok(request) = rx.recv() {
            let epoch = self.store.epoch() + 1;
            let next = if let Some(path) = &request.snapshot {
                // Snapshot-served reload: O(read) archive load instead of
                // O(rebuild). A bad archive fails the reload without
                // touching the current generation — queries keep being
                // answered from the old world.
                match WorldSnapshot::load_archive(path, epoch, self.config.backend) {
                    Ok(next) => next,
                    Err(e) => {
                        eprintln!("perilsd: snapshot reload from {path:?} failed: {e}");
                        self.metrics.reload_failed();
                        self.reloading.store(false, Ordering::SeqCst);
                        continue;
                    }
                }
            } else {
                let spec = {
                    let mut spec = self.spec.lock();
                    if let Some(seed) = request.seed {
                        spec.reseed(seed);
                    }
                    spec.clone()
                };
                WorldSnapshot::build(&spec, epoch, self.config.threads, self.config.figures)
            };
            // Clear the gate *before* the swap publishes the new epoch:
            // a client that polls `/healthz` until the epoch bumps and
            // then posts the next reload must never bounce off a flag
            // that is only cleared after the swap it already observed.
            self.reloading.store(false, Ordering::SeqCst);
            self.store.swap(next);
            self.metrics.reload_completed();
        }
    }

    /// One worker: pull connections until the queue closes, caching a
    /// `ClosureWorkspace` per snapshot epoch so warm queries allocate
    /// nothing.
    fn worker_loop(&self, queue: &ConnQueue, reload_tx: mpsc::Sender<ReloadRequest>) {
        let mut workspace: Option<(u64, ClosureWorkspace)> = None;
        while let Some(conn) = queue.pop(&self.metrics) {
            let _ = self.handle_connection(conn, &mut workspace, &reload_tx);
        }
    }

    /// Serves one (possibly keep-alive) connection.
    fn handle_connection(
        &self,
        conn: TcpStream,
        workspace: &mut Option<(u64, ClosureWorkspace)>,
        reload_tx: &mpsc::Sender<ReloadRequest>,
    ) -> io::Result<()> {
        conn.set_read_timeout(Some(READ_TIMEOUT))?;
        conn.set_nodelay(true)?;
        let mut writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        loop {
            let request = match read_request(&mut reader) {
                Ok(request) => request,
                Err(RequestError::Eof) => return Ok(()),
                Err(RequestError::Malformed(why)) => {
                    let response = Response::error(400, why);
                    self.metrics.record(Endpoint::Other, 400, Duration::ZERO);
                    let _ = response.write_to(&mut writer, false, true);
                    return Ok(());
                }
                Err(RequestError::Io(e)) => return Err(e),
            };
            let started = Instant::now();
            let (endpoint, response, shutdown_after) = self.route(&request, workspace, reload_tx);
            let keep_alive = request.keep_alive && !shutdown_after && !self.is_shutting_down();
            // HEAD answers carry the head (real Content-Length included)
            // but no body bytes.
            let include_body = request.method != "HEAD";
            response.write_to(&mut writer, keep_alive, include_body)?;
            self.metrics
                .record(endpoint, response.status, started.elapsed());
            self.requests_served.fetch_add(1, Ordering::Relaxed);
            if shutdown_after {
                self.trigger_shutdown();
            }
            if !keep_alive {
                return Ok(());
            }
        }
    }

    /// Routes one request to its plane. Returns the endpoint label, the
    /// response, and whether to start draining after the response is
    /// written.
    fn route(
        &self,
        request: &Request,
        workspace: &mut Option<(u64, ClosureWorkspace)>,
        reload_tx: &mpsc::Sender<ReloadRequest>,
    ) -> (Endpoint, Response, bool) {
        let path = request.path.as_str();
        let get = request.method == "GET" || request.method == "HEAD";
        let post = request.method == "POST";

        if let Some(raw) = path.strip_prefix("/name/") {
            if !get {
                return (Endpoint::Name, method_not_allowed("GET"), false);
            }
            let snap = self.store.current();
            let ws = self.workspace_for(&snap, workspace);
            return (
                Endpoint::Name,
                query::name_response(&snap, &self.rules, ws, raw),
                false,
            );
        }
        if let Some(raw) = path.strip_prefix("/zone/") {
            if !get {
                return (Endpoint::Zone, method_not_allowed("GET"), false);
            }
            let snap = self.store.current();
            return (
                Endpoint::Zone,
                query::zone_response(&snap, &self.rules, raw),
                false,
            );
        }
        match path {
            "/figures" => {
                if !get {
                    return (Endpoint::Figures, method_not_allowed("GET"), false);
                }
                let snap = self.store.current();
                (Endpoint::Figures, query::figures_response(&snap), false)
            }
            "/names" => {
                if !get {
                    return (Endpoint::Names, method_not_allowed("GET"), false);
                }
                let snap = self.store.current();
                (
                    Endpoint::Names,
                    query::names_response(&snap, request.query.as_deref()),
                    false,
                )
            }
            "/healthz" => {
                if !get {
                    return (Endpoint::Healthz, method_not_allowed("GET"), false);
                }
                let snap = self.store.current();
                let body = format!(
                    "{{\"status\":\"ok\",\"epoch\":{},\"age_s\":{},\"reloading\":{},\"names\":{}}}",
                    snap.epoch,
                    snap.age().as_secs_f64(),
                    self.reloading.load(Ordering::SeqCst),
                    snap.names.len(),
                );
                (Endpoint::Healthz, Response::json(200, body), false)
            }
            "/metrics" => {
                if !get {
                    return (Endpoint::Metrics, method_not_allowed("GET"), false);
                }
                let snap = self.store.current();
                let (resident, cache) = match &snap.store {
                    Some(store) => (store.resident_bytes(), store.cache_counters()),
                    None => (0, perils_util::CacheCounters::default()),
                };
                let text = self.metrics.render(
                    snap.epoch,
                    snap.age(),
                    self.reloading.load(Ordering::SeqCst),
                    self.config.threads,
                    snap.stats.source.kind(),
                    snap.stats.source.load_ms(),
                    snap.backend,
                    resident,
                    cache,
                );
                (Endpoint::Metrics, Response::text(200, text), false)
            }
            "/reload" => {
                if !post {
                    return (Endpoint::Reload, method_not_allowed("POST"), false);
                }
                (
                    Endpoint::Reload,
                    self.schedule_reload(&request.body, reload_tx),
                    false,
                )
            }
            "/shutdown" => {
                if !post {
                    return (Endpoint::Shutdown, method_not_allowed("POST"), false);
                }
                let body = format!(
                    "{{\"status\":\"draining\",\"epoch\":{}}}",
                    self.store.epoch()
                );
                (Endpoint::Shutdown, Response::json(200, body), true)
            }
            _ => (
                Endpoint::Other,
                Response::error(404, &format!("no route for {path}")),
                false,
            ),
        }
    }

    /// Parses an optional `{"seed":N}` or `{"snapshot":"PATH"}` body and
    /// queues a rebuild (or an archive swap-in).
    ///
    /// At most one reload is pending at a time: the `reloading` flag is
    /// the admission gate, so a burst of `POST /reload` queues one
    /// rebuild and answers `409` to the rest instead of stacking
    /// multi-second builds back-to-back (retry once the epoch bumps).
    fn schedule_reload(&self, body: &[u8], reload_tx: &mpsc::Sender<ReloadRequest>) -> Response {
        let mut seed = None;
        let mut snapshot = None;
        if !body.is_empty() {
            let text = match std::str::from_utf8(body) {
                Ok(text) => text,
                Err(_) => return Response::error(400, "reload body is not utf-8"),
            };
            let value = match json::parse(text) {
                Ok(value) => value,
                Err(e) => return Response::error(400, &format!("reload body is not JSON: {e}")),
            };
            if let Some(v) = value.get("seed") {
                match v.as_u64() {
                    Some(n) => seed = Some(n),
                    None => {
                        return Response::error(
                            400,
                            "reload \"seed\" must be a non-negative integer",
                        )
                    }
                }
            }
            if let Some(v) = value.get("snapshot") {
                match v.as_str() {
                    Some(path) if !path.is_empty() => snapshot = Some(path.to_string()),
                    _ => {
                        return Response::error(
                            400,
                            "reload \"snapshot\" must be a non-empty path string",
                        )
                    }
                }
            }
            if seed.is_some() && snapshot.is_some() {
                return Response::error(
                    400,
                    "reload takes \"seed\" or \"snapshot\", not both (a snapshot is already seeded)",
                );
            }
            let recognized = usize::from(seed.is_some()) + usize::from(snapshot.is_some());
            let keys = value.as_object().map(|o| o.len()).unwrap_or(usize::MAX);
            if keys != recognized {
                return Response::error(400, "reload body supports only \"seed\" or \"snapshot\"");
            }
        }
        if self.reloading.swap(true, Ordering::SeqCst) {
            return Response::error(
                409,
                "a reload is already pending; retry after the epoch bumps",
            );
        }
        if reload_tx.send(ReloadRequest { seed, snapshot }).is_err() {
            self.reloading.store(false, Ordering::SeqCst);
            return Response::error(503, "daemon is draining");
        }
        Response::json(
            202,
            format!(
                "{{\"status\":\"scheduled\",\"epoch\":{}}}",
                self.store.epoch()
            ),
        )
    }

    /// The worker's per-epoch workspace: rebuilt only when the snapshot
    /// generation changed since this worker's last query.
    fn workspace_for<'ws>(
        &self,
        snap: &WorldSnapshot,
        cache: &'ws mut Option<(u64, ClosureWorkspace)>,
    ) -> &'ws mut ClosureWorkspace {
        let stale = !matches!(cache, Some((epoch, _)) if *epoch == snap.epoch);
        if stale {
            *cache = Some((snap.epoch, snap.index.workspace()));
        }
        &mut cache.as_mut().expect("just ensured").1
    }
}

/// A `405` with the allowed method spelled out.
fn method_not_allowed(allowed: &str) -> Response {
    Response::error(405, &format!("method not allowed (use {allowed})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_daemon(threads: usize) -> Daemon {
        Daemon::boot(
            WorldSpec::parse("tiny", 11).expect("tiny parses"),
            ServiceConfig {
                threads,
                queue_cap: 8,
                figures: false,
                ..ServiceConfig::default()
            },
        )
    }

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: None,
            keep_alive: true,
            body: Vec::new(),
        }
    }

    fn route_status(daemon: &Daemon, method: &str, path: &str) -> u16 {
        let (tx, _rx) = mpsc::channel();
        let mut ws = None;
        daemon.route(&request(method, path), &mut ws, &tx).1.status
    }

    #[test]
    fn routes_cover_all_three_planes() {
        let daemon = tiny_daemon(1);
        assert_eq!(route_status(&daemon, "GET", "/healthz"), 200);
        assert_eq!(route_status(&daemon, "GET", "/metrics"), 200);
        assert_eq!(route_status(&daemon, "GET", "/names"), 200);
        assert_eq!(route_status(&daemon, "GET", "/figures"), 404); // figures disabled
        assert_eq!(route_status(&daemon, "GET", "/nope"), 404);
        assert_eq!(route_status(&daemon, "POST", "/healthz"), 405);
        assert_eq!(route_status(&daemon, "GET", "/reload"), 405);
    }

    #[test]
    fn name_route_reuses_the_worker_workspace() {
        let daemon = tiny_daemon(1);
        let first = daemon.store().current().names.get(0).name.to_string();
        let (tx, _rx) = mpsc::channel();
        let mut ws = None;
        let path = format!("/name/{first}");
        let a = daemon.route(&request("GET", &path), &mut ws, &tx).1;
        let b = daemon.route(&request("GET", &path), &mut ws, &tx).1;
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body, "same snapshot, same bytes");
        assert!(ws.is_some(), "workspace cached after first query");
    }

    #[test]
    fn shutdown_route_marks_drain() {
        let daemon = tiny_daemon(1);
        let (tx, _rx) = mpsc::channel();
        let mut ws = None;
        let (endpoint, response, drain) = daemon.route(&request("POST", "/shutdown"), &mut ws, &tx);
        assert_eq!(endpoint, Endpoint::Shutdown);
        assert_eq!(response.status, 200);
        assert!(drain);
    }

    #[test]
    fn concurrent_reloads_are_gated_to_one_pending() {
        let daemon = tiny_daemon(1);
        let (tx, rx) = mpsc::channel();
        assert_eq!(daemon.schedule_reload(b"", &tx).status, 202);
        // While one is pending, further reloads bounce instead of
        // stacking full rebuilds, and queue nothing.
        assert_eq!(daemon.schedule_reload(b"{\"seed\":7}", &tx).status, 409);
        assert!(rx.try_recv().is_ok(), "exactly one rebuild queued");
        assert!(rx.try_recv().is_err(), "the 409 queued nothing");
        // Once the reloader clears the gate, scheduling works again.
        daemon.reloading.store(false, Ordering::SeqCst);
        assert_eq!(daemon.schedule_reload(b"", &tx).status, 202);
    }

    #[test]
    fn reload_with_bad_bodies_is_a_400() {
        let daemon = tiny_daemon(1);
        let (tx, _rx) = mpsc::channel();
        let bad = [
            b"not json".to_vec(),
            b"{\"other\":1}".to_vec(),
            b"{\"seed\":-1}".to_vec(),
        ];
        for body in bad {
            let response = daemon.schedule_reload(&body, &tx);
            assert_eq!(response.status, 400, "body: {}", response.body);
        }
    }
}
