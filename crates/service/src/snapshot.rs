//! The swappable world: what the daemon holds warm and what a reload
//! replaces.
//!
//! A [`WorldSnapshot`] is everything a query needs, built once:
//! universe, dependency index, lint facts and the cached figure sweep,
//! stamped with a monotonically increasing epoch. The [`SnapshotStore`]
//! holds the current snapshot behind `RwLock<Arc<..>>`: readers clone
//! the `Arc` (a refcount bump under a read lock held for nanoseconds)
//! and keep answering from the old world while a reload builds and
//! swaps in the next one — queries never observe a torn snapshot, only
//! epoch N or epoch N+1.

use perils_authserver::scenarios::{
    cornell_figure1, fbi_case, lint_tripwire, lint_tripwire_targets,
};
use perils_core::closure::{DependencyIndex, IndexBuildStats};
use perils_core::lint::LintIndex;
use perils_core::universe::Universe;
use perils_dns::name::name;
use perils_survey::engine::{Engine, ScenarioSource, SyntheticSource, WorldSource, WorldStream};
use perils_survey::params::TopologyParams;
use perils_survey::render::{FigureOutcome, FigureRegistry};
use perils_survey::topology::SurveyName;
use perils_survey::{NameTable, SnapshotBackend};
use perils_util::snapshot::SnapshotError;
use perils_util::ByteStore;
use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

/// Names per batch when pulling the stream's name phase through the
/// figure-sweep engine (matches the streaming CLI default).
const NAME_BATCH: usize = 4096;

/// Which world the daemon builds — kept by the daemon so `POST /reload`
/// can rebuild the same spec (optionally reseeded) from scratch through
/// the streamed ingestion path.
#[derive(Debug, Clone)]
pub enum WorldSpec {
    /// A seeded synthetic survey world.
    Synthetic(TopologyParams),
    /// The fbi.gov case study (packet-level scenario).
    Fbi,
    /// The Figure 1 cornell.edu web.
    Cornell,
    /// The all-pathologies lint fixture.
    Tripwire,
}

impl WorldSpec {
    /// Parses a `--world` argument. Synthetic scales take the seed;
    /// scenario worlds ignore it.
    pub fn parse(world: &str, seed: u64) -> Result<WorldSpec, String> {
        match world {
            "tiny" => Ok(WorldSpec::Synthetic(TopologyParams::tiny(seed))),
            "default" => Ok(WorldSpec::Synthetic(TopologyParams::default_scaled(seed))),
            "paper" => Ok(WorldSpec::Synthetic(TopologyParams::paper(seed))),
            "fbi" => Ok(WorldSpec::Fbi),
            "cornell" => Ok(WorldSpec::Cornell),
            "tripwire" => Ok(WorldSpec::Tripwire),
            other => Err(format!(
                "unknown world {other:?} (tiny|default|paper|fbi|cornell|tripwire)"
            )),
        }
    }

    /// One-line description for boot/reload logging.
    pub fn describe(&self) -> String {
        match self {
            WorldSpec::Synthetic(p) => {
                format!("synthetic world (seed {}, {} names)", p.seed, p.names)
            }
            WorldSpec::Fbi => "fbi.gov case study".to_string(),
            WorldSpec::Cornell => "cornell Figure 1 web".to_string(),
            WorldSpec::Tripwire => "lint tripwire fixture".to_string(),
        }
    }

    /// Reseeds a synthetic spec in place (`POST /reload` with a body);
    /// scenario worlds have no seed and ignore it.
    pub fn reseed(&mut self, seed: u64) {
        if let WorldSpec::Synthetic(p) = self {
            p.seed = seed;
        }
    }

    /// The world as a stream — every build, boot or reload, goes through
    /// the same bounded-memory ingestion path the batch CLIs use.
    fn stream(&self) -> WorldStream {
        match self {
            WorldSpec::Synthetic(params) => SyntheticSource {
                params: params.clone(),
            }
            .stream(),
            WorldSpec::Fbi => ScenarioSource {
                scenario: &fbi_case(),
                targets: vec![
                    name("www.fbi.gov"),
                    name("www.sprintip.com"),
                    name("www.telemail.net"),
                ],
            }
            .stream(),
            WorldSpec::Cornell => ScenarioSource {
                scenario: &cornell_figure1(),
                targets: vec![name("www.cs.cornell.edu"), name("www.cornell.edu")],
            }
            .stream(),
            WorldSpec::Tripwire => ScenarioSource {
                scenario: &lint_tripwire(),
                targets: lint_tripwire_targets(),
            }
            .stream(),
        }
    }
}

/// Where the active snapshot came from — `/metrics` surfaces this as
/// `perilsd_snapshot_source{kind="built|loaded"}` so operators can tell
/// a from-scratch build from a `.psa` archive boot at a glance.
#[derive(Debug, Clone)]
pub enum SnapshotSource {
    /// Built from scratch through the streamed ingestion path.
    Built,
    /// Reconstituted from a `.psa` snapshot archive.
    Loaded {
        /// Archive size on disk.
        archive_bytes: u64,
        /// Wall-clock of the read + decode.
        load: Duration,
    },
}

impl SnapshotSource {
    /// The `/metrics` label value.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotSource::Built => "built",
            SnapshotSource::Loaded { .. } => "loaded",
        }
    }

    /// Archive load wall-time in milliseconds (0 for built snapshots).
    pub fn load_ms(&self) -> f64 {
        match self {
            SnapshotSource::Built => 0.0,
            SnapshotSource::Loaded { load, .. } => load.as_secs_f64() * 1e3,
        }
    }
}

/// Build cost breakdown, surfaced by `/healthz` logging and `/metrics`.
#[derive(Debug, Clone)]
pub struct SnapshotStats {
    /// Wall-clock of the whole build (stream + index + lint + figures),
    /// or of the archive load for loaded snapshots.
    pub build: Duration,
    /// Dependency-index phase timings (zeroed for loaded snapshots — the
    /// index is read, not rebuilt).
    pub index: IndexBuildStats,
    /// Universe shape.
    pub zones: usize,
    /// Universe shape.
    pub servers: usize,
    /// Surveyed names.
    pub names: usize,
    /// Figures rendered into the cached sweep (0 with `--no-figures`).
    pub figures: usize,
    /// Whether this world was built or loaded from an archive.
    pub source: SnapshotSource,
}

/// One immutable world generation: everything a query touches.
#[derive(Debug)]
pub struct WorldSnapshot {
    /// Strictly increasing generation counter (starts at 1).
    pub epoch: u64,
    /// The delegation universe.
    pub universe: Universe,
    /// Universe-wide dependency index (closures, SCCs, memoized sets).
    pub index: DependencyIndex,
    /// Shared lint facts (depths, zombies, reachability).
    pub lint: LintIndex,
    /// The surveyed names, in survey order. Owned for built worlds and
    /// copy loads; a lazy view into the archive store for heap/paged
    /// loads (so `/names` responses decode only what they return).
    pub names: NameTable,
    /// Indices into `names` of the most popular subset (what the
    /// top-500 figures slice on; archived so a loaded world can re-run
    /// the figure sweep).
    pub top500: Vec<usize>,
    /// The cached full-figure sweep as one JSON document, or `None`
    /// when the daemon was started with figures disabled.
    pub figures_json: Option<String>,
    /// Build cost and shape.
    pub stats: SnapshotStats,
    /// The archive byte store a view-backed world still reads from
    /// (`None` for built worlds and copy-decoded loads). `/metrics`
    /// reads resident bytes and page-cache counters off it.
    pub store: Option<Arc<ByteStore>>,
    /// Archive byte-store backend behind this world: `"none"` for
    /// built worlds, otherwise the `--snapshot-backend` kind
    /// (`"copy"`, `"heap"` or `"paged"`).
    pub backend: &'static str,
    /// When the build finished (drives `/metrics` snapshot age).
    pub built: Instant,
}

impl WorldSnapshot {
    /// Builds generation `epoch` of `spec` from scratch through the
    /// streamed ingestion path: universe (and, unless disabled, the
    /// full figure sweep) first, then the dependency index and lint
    /// facts the query plane reads.
    pub fn build(spec: &WorldSpec, epoch: u64, threads: usize, figures: bool) -> WorldSnapshot {
        let start = Instant::now();
        let (universe, names, top500, figures_json, rendered) = if figures {
            let engine = Engine::with_extended_metrics().threads(NonZeroUsize::new(threads));
            let batch = NonZeroUsize::new(NAME_BATCH).expect("static nonzero");
            let report = engine.run_stream(spec.stream(), batch);
            let (json, rendered) = render_figures(&report, epoch);
            let world = report.world;
            (
                world.universe,
                world.names,
                world.top500,
                Some(json),
                rendered,
            )
        } else {
            let mut stream = spec.stream();
            let universe = stream.build_universe();
            let names: Vec<SurveyName> = stream.names().collect();
            let top500 = stream.top500().to_vec();
            (universe, names, top500, None, 0)
        };
        let (index, index_stats) = DependencyIndex::build_with_stats(&universe, threads);
        let lint = LintIndex::build(&universe);
        let stats = SnapshotStats {
            build: start.elapsed(),
            index: index_stats,
            zones: universe.zone_count(),
            servers: universe.server_count(),
            names: names.len(),
            figures: rendered,
            source: SnapshotSource::Built,
        };
        WorldSnapshot {
            epoch,
            universe,
            index,
            lint,
            names: NameTable::Owned(names),
            top500,
            figures_json,
            stats,
            store: None,
            backend: "none",
            built: Instant::now(),
        }
    }

    /// Persists this snapshot as a `.psa` archive; returns the bytes
    /// written. Everything a later [`WorldSnapshot::load_archive`] needs
    /// is included — the cached figure sweep travels verbatim, so a
    /// loaded daemon serves byte-identical `/figures` responses (modulo
    /// the epoch stamp, which the loader rewrites to its own epoch).
    pub fn save_archive(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        perils_survey::snapshot::save_world(
            path,
            &self.universe,
            &self.index,
            &self.lint,
            // Saving is rare (explicit --save-snapshot); materializing a
            // view-backed table here is fine.
            &self.names.to_vec(),
            &self.top500,
            self.figures_json
                .as_deref()
                .map(|json| (json, self.stats.figures)),
        )
    }

    /// Boots generation `epoch` from a `.psa` archive: one bulk read and
    /// per-section chunk decoding instead of a world rebuild. The cached
    /// figure JSON is re-stamped with this generation's epoch; everything
    /// else is byte-identical to the snapshot that was saved.
    ///
    /// `backend` picks the byte-store behind the big flat sections:
    /// `Copy` materializes everything (and drops the archive), `Heap`
    /// keeps one resident buffer the arrays view into, `Paged` serves
    /// them from a bounded page cache over the file.
    pub fn load_archive(
        path: impl AsRef<Path>,
        epoch: u64,
        backend: SnapshotBackend,
    ) -> Result<WorldSnapshot, SnapshotError> {
        let start = Instant::now();
        let world = perils_survey::snapshot::load_world_with(path, backend)?;
        let load = start.elapsed();
        let backend_kind = world.backend_kind();
        let figures_json = world
            .figures_json
            .map(|json| restamp_figures_epoch(&json, epoch));
        let stats = SnapshotStats {
            build: load,
            index: IndexBuildStats::default(),
            zones: world.universe.zone_count(),
            servers: world.universe.server_count(),
            names: world.names.len(),
            figures: world.figures_rendered,
            source: SnapshotSource::Loaded {
                archive_bytes: world.archive_bytes,
                load,
            },
        };
        Ok(WorldSnapshot {
            epoch,
            universe: world.universe,
            index: world.index,
            lint: world.lint,
            names: world.names,
            top500: world.top500,
            figures_json,
            stats,
            store: world.store,
            backend: backend_kind,
            built: Instant::now(),
        })
    }

    /// Time since this snapshot finished building.
    pub fn age(&self) -> Duration {
        self.built.elapsed()
    }
}

/// Rewrites the leading `{"epoch":N,` stamp of a cached figure document
/// (the exact prefix `render_figures` emits) to `epoch`. A document
/// without that prefix is returned unchanged — better to serve figures
/// with a stale stamp than to reject an otherwise valid archive.
fn restamp_figures_epoch(json: &str, epoch: u64) -> String {
    if let Some(rest) = json.strip_prefix("{\"epoch\":") {
        if let Some(comma) = rest.find(',') {
            if !rest[..comma].is_empty() && rest[..comma].bytes().all(|b| b.is_ascii_digit()) {
                return format!("{{\"epoch\":{epoch},{}", &rest[comma + 1..]);
            }
        }
    }
    json.to_string()
}

/// Renders the extended figure registry into one JSON document:
/// `{"epoch":N,"figures":[..],"skipped":[{"id","missing"}]}`. Missing
/// columns are skips, not errors — mirroring the figures CLI.
fn render_figures(report: &perils_survey::engine::SurveyReport, epoch: u64) -> (String, usize) {
    let registry = FigureRegistry::extended();
    let outcomes = registry.build_all(report);
    let mut figures = String::new();
    let mut skipped = String::new();
    let mut rendered = 0usize;
    for outcome in &outcomes {
        match outcome {
            FigureOutcome::Rendered(figure) => {
                if rendered > 0 {
                    figures.push(',');
                }
                figures.push_str(&figure.json());
                rendered += 1;
            }
            FigureOutcome::Skipped { id, missing } => {
                if !skipped.is_empty() {
                    skipped.push(',');
                }
                skipped.push_str("{\"id\":");
                perils_util::json::push_json_string(&mut skipped, id);
                skipped.push_str(",\"missing\":[");
                for (i, column) in missing.iter().enumerate() {
                    if i > 0 {
                        skipped.push(',');
                    }
                    perils_util::json::push_json_string(&mut skipped, column);
                }
                skipped.push_str("]}");
            }
            FigureOutcome::Failed { id, error } => {
                if !skipped.is_empty() {
                    skipped.push(',');
                }
                skipped.push_str("{\"id\":");
                perils_util::json::push_json_string(&mut skipped, id);
                skipped.push_str(",\"error\":");
                perils_util::json::push_json_string(&mut skipped, &error.to_string());
                skipped.push('}');
            }
        }
    }
    (
        format!("{{\"epoch\":{epoch},\"figures\":[{figures}],\"skipped\":[{skipped}]}}"),
        rendered,
    )
}

/// The atomically swappable current snapshot.
///
/// Readers pay one `Arc` clone under a read lock; the swap replaces the
/// `Arc` under the write lock in O(1) — an in-flight query keeps its
/// generation alive through its own refcount until it finishes.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<WorldSnapshot>>,
}

impl SnapshotStore {
    /// Wraps the boot snapshot.
    pub fn new(snapshot: WorldSnapshot) -> SnapshotStore {
        SnapshotStore {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current generation (cheap: refcount bump).
    pub fn current(&self) -> Arc<WorldSnapshot> {
        self.current.read().clone()
    }

    /// The current epoch without keeping the snapshot alive.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Publishes `next`, which must advance the epoch — the per-connection
    /// monotonicity the integration tests pin relies on this.
    ///
    /// # Panics
    ///
    /// Panics if `next.epoch` does not exceed the current epoch.
    pub fn swap(&self, next: WorldSnapshot) -> u64 {
        let next = Arc::new(next);
        let mut current = self.current.write();
        assert!(
            next.epoch > current.epoch,
            "snapshot epoch must advance: {} -> {}",
            current.epoch,
            next.epoch
        );
        let epoch = next.epoch;
        *current = next;
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorldSpec {
        WorldSpec::parse("tiny", 7).expect("tiny parses")
    }

    #[test]
    fn builds_tiny_snapshot_with_figures() {
        let snap = WorldSnapshot::build(&tiny_spec(), 1, 2, true);
        assert_eq!(snap.epoch, 1);
        assert!(snap.stats.names > 0);
        assert!(snap.stats.figures > 0);
        let json = snap.figures_json.as_deref().expect("figures cached");
        let value = perils_util::json::parse(json).expect("figures JSON parses");
        assert_eq!(value.get("epoch").and_then(|v| v.as_u64()), Some(1));
        assert!(
            value
                .get("figures")
                .and_then(|v| v.as_array())
                .map(|a| a.len())
                == Some(snap.stats.figures)
        );
    }

    #[test]
    fn no_figures_skips_the_sweep_but_keeps_names() {
        let snap = WorldSnapshot::build(&tiny_spec(), 1, 1, false);
        assert!(snap.figures_json.is_none());
        assert_eq!(snap.stats.figures, 0);
        assert!(!snap.names.is_empty());
    }

    #[test]
    fn snapshot_is_thread_count_invariant() {
        let one = WorldSnapshot::build(&tiny_spec(), 1, 1, true);
        let eight = WorldSnapshot::build(&tiny_spec(), 1, 8, true);
        assert_eq!(one.universe, eight.universe);
        assert_eq!(one.figures_json, eight.figures_json);
    }

    #[test]
    fn store_swap_advances_epoch_and_readers_hold_old_generations() {
        let store = SnapshotStore::new(WorldSnapshot::build(&tiny_spec(), 1, 1, false));
        let held = store.current();
        assert_eq!(
            store.swap(WorldSnapshot::build(&tiny_spec(), 2, 1, false)),
            2
        );
        assert_eq!(held.epoch, 1, "in-flight reader keeps its generation");
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn store_rejects_stale_epochs() {
        let store = SnapshotStore::new(WorldSnapshot::build(&tiny_spec(), 3, 1, false));
        store.swap(WorldSnapshot::build(&tiny_spec(), 3, 1, false));
    }

    fn temp_psa(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("perilsd_test_{tag}_{}.psa", std::process::id()))
    }

    #[test]
    fn archive_round_trip_is_identical_with_restamped_epoch() {
        let built = WorldSnapshot::build(&tiny_spec(), 1, 2, true);
        let path = temp_psa("roundtrip");
        let bytes = built.save_archive(&path).expect("saves");
        assert!(bytes > 0);
        let loaded = WorldSnapshot::load_archive(&path, 5, SnapshotBackend::Heap).expect("loads");
        // A paged boot over the same archive answers identically from a
        // two-page cache budget.
        let paged =
            WorldSnapshot::load_archive(&path, 5, SnapshotBackend::paged(8192)).expect("loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.backend, "heap");
        assert!(loaded.store.is_some(), "heap worlds keep the byte store");
        assert_eq!(paged.backend, "paged");
        assert_eq!(paged.universe, loaded.universe);
        assert_eq!(paged.index, loaded.index);
        assert_eq!(paged.figures_json, loaded.figures_json);
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.universe, built.universe);
        assert_eq!(loaded.index, built.index);
        assert_eq!(loaded.lint, built.lint);
        assert_eq!(loaded.names, built.names);
        assert_eq!(loaded.top500, built.top500);
        assert_eq!(loaded.stats.figures, built.stats.figures);
        assert_eq!(loaded.stats.source.kind(), "loaded");
        // The figure document is byte-identical except the epoch stamp.
        let built_json = built.figures_json.as_deref().expect("built figures");
        let loaded_json = loaded.figures_json.as_deref().expect("loaded figures");
        assert_eq!(loaded_json, restamp_figures_epoch(built_json, 5));
        assert_eq!(restamp_figures_epoch(loaded_json, 1), built_json);
    }

    #[test]
    fn load_archive_rejects_garbage_with_typed_error() {
        let path = temp_psa("garbage");
        std::fs::write(&path, b"definitely not a snapshot archive").expect("writes");
        let err =
            WorldSnapshot::load_archive(&path, 1, SnapshotBackend::Heap).expect_err("rejected");
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("not a perils snapshot archive"));
    }

    #[test]
    fn restamp_rewrites_only_the_epoch_prefix() {
        assert_eq!(
            restamp_figures_epoch("{\"epoch\":12,\"figures\":[]}", 3),
            "{\"epoch\":3,\"figures\":[]}"
        );
        let unstamped = "{\"figures\":[]}";
        assert_eq!(restamp_figures_epoch(unstamped, 3), unstamped);
    }
}
