//! The observability plane: lock-free counters rendered as Prometheus
//! text exposition.
//!
//! Every counter is a relaxed atomic — recording a request on the hot
//! path is a handful of uncontended `fetch_add`s, never a lock. The
//! exposition format (and the meaning of every field) is documented in
//! `OBSERVABILITY.md`; the renderer here is the single source of truth
//! the doc describes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// The endpoints the daemon distinguishes in its per-endpoint counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /name/<name>`
    Name,
    /// `GET /zone/<zone>`
    Zone,
    /// `GET /figures`
    Figures,
    /// `GET /names`
    Names,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /reload`
    Reload,
    /// `POST /shutdown`
    Shutdown,
    /// Anything else (404s, bad methods, parse failures).
    Other,
}

/// All endpoints, in exposition order.
pub const ENDPOINTS: [Endpoint; 9] = [
    Endpoint::Name,
    Endpoint::Zone,
    Endpoint::Figures,
    Endpoint::Names,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Reload,
    Endpoint::Shutdown,
    Endpoint::Other,
];

impl Endpoint {
    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Name => "name",
            Endpoint::Zone => "zone",
            Endpoint::Figures => "figures",
            Endpoint::Names => "names",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        ENDPOINTS.iter().position(|e| *e == self).expect("listed")
    }
}

/// Histogram bucket upper bounds, in microseconds. Chosen around the
/// service contract (warm query < 5 ms p50): enough resolution below
/// 5 ms to see the p50 move, a long tail above it to catch stalls.
const BUCKET_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram (cumulative on render, like
/// Prometheus expects).
#[derive(Debug, Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        match BUCKET_BOUNDS_US.iter().position(|&bound| us <= bound) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// The daemon's counters. One instance lives as long as the daemon;
/// workers and the acceptor record into it without coordination.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; ENDPOINTS.len()],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    latency: LatencyHistogram,
    connections: AtomicU64,
    queue_depth: AtomicUsize,
    queue_rejected: AtomicU64,
    reloads: AtomicU64,
    reloads_failed: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one served request: endpoint counter, status class,
    /// latency histogram.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed);
    }

    /// Counts an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the pending-connection queue depth (the queue owns the
    /// authoritative value; this mirrors it for scraping).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts a connection turned away with `503` because the queue hit
    /// its cap.
    pub fn queue_rejected(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed snapshot reload.
    pub fn reload_completed(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a reload that failed (archive unreadable or corrupt); the
    /// old generation keeps serving.
    pub fn reload_failed(&self) {
        self.reloads_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Failed reloads so far.
    pub fn reloads_failed(&self) -> u64 {
        self.reloads_failed.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the Prometheus text exposition. Snapshot identity (epoch,
    /// age, provenance) and daemon state (reloading, worker count) come
    /// from the caller — they live outside the counter block.
    /// `source_kind` is `"built"` or `"loaded"`; `archive_load_ms` is the
    /// `.psa` decode wall-clock when the snapshot was loaded from one
    /// (0 when built in-process). `backend_kind` is the archive
    /// byte-store behind the serving world (`"none"` for built worlds);
    /// `resident_bytes` is how much of the archive is in memory right
    /// now (the whole buffer for heap, cached pages for paged, 0
    /// otherwise); `cache` carries the paged backend's hit/miss/eviction
    /// totals (all zero for every other backend).
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        epoch: u64,
        age: Duration,
        reloading: bool,
        workers: usize,
        source_kind: &str,
        archive_load_ms: f64,
        backend_kind: &str,
        resident_bytes: u64,
        cache: perils_util::CacheCounters,
    ) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP perilsd_requests_total Requests served, by endpoint.\n");
        out.push_str("# TYPE perilsd_requests_total counter\n");
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            let count = self.requests[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "perilsd_requests_total{{endpoint=\"{}\"}} {}\n",
                endpoint.label(),
                count
            ));
        }

        out.push_str("# HELP perilsd_responses_total Responses, by status class.\n");
        out.push_str("# TYPE perilsd_responses_total counter\n");
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            out.push_str(&format!(
                "perilsd_responses_total{{class=\"{class}\"}} {}\n",
                counter.load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP perilsd_request_duration_seconds Request latency (route to last byte written).\n",
        );
        out.push_str("# TYPE perilsd_request_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, bound_us) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.latency.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "perilsd_request_duration_seconds_bucket{{le=\"{}\"}} {}\n",
                (*bound_us as f64) / 1e6,
                cumulative
            ));
        }
        cumulative += self.latency.overflow.load(Ordering::Relaxed);
        out.push_str(&format!(
            "perilsd_request_duration_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "perilsd_request_duration_seconds_sum {}\n",
            self.latency.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "perilsd_request_duration_seconds_count {}\n",
            self.latency.count.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP perilsd_snapshot_epoch Current snapshot generation.\n");
        out.push_str("# TYPE perilsd_snapshot_epoch gauge\n");
        out.push_str(&format!("perilsd_snapshot_epoch {epoch}\n"));

        out.push_str("# HELP perilsd_snapshot_age_seconds Seconds since the snapshot was built.\n");
        out.push_str("# TYPE perilsd_snapshot_age_seconds gauge\n");
        out.push_str(&format!(
            "perilsd_snapshot_age_seconds {}\n",
            age.as_secs_f64()
        ));

        out.push_str("# HELP perilsd_snapshot_reloading 1 while a reload is queued or building.\n");
        out.push_str("# TYPE perilsd_snapshot_reloading gauge\n");
        out.push_str(&format!(
            "perilsd_snapshot_reloading {}\n",
            u8::from(reloading)
        ));

        out.push_str(
            "# HELP perilsd_snapshot_source How the serving snapshot came to be (1 on its kind).\n",
        );
        out.push_str("# TYPE perilsd_snapshot_source gauge\n");
        for kind in ["built", "loaded"] {
            out.push_str(&format!(
                "perilsd_snapshot_source{{kind=\"{kind}\"}} {}\n",
                u8::from(kind == source_kind)
            ));
        }

        out.push_str(
            "# HELP perilsd_snapshot_archive_load_ms Archive decode time for a loaded snapshot (0 when built in-process).\n",
        );
        out.push_str("# TYPE perilsd_snapshot_archive_load_ms gauge\n");
        out.push_str(&format!(
            "perilsd_snapshot_archive_load_ms {archive_load_ms}\n"
        ));

        out.push_str(
            "# HELP perilsd_snapshot_backend Archive byte-store behind the serving world (1 on its kind; none = built or copy-free world).\n",
        );
        out.push_str("# TYPE perilsd_snapshot_backend gauge\n");
        for kind in ["none", "copy", "heap", "paged"] {
            out.push_str(&format!(
                "perilsd_snapshot_backend{{kind=\"{kind}\"}} {}\n",
                u8::from(kind == backend_kind)
            ));
        }

        out.push_str(
            "# HELP perilsd_snapshot_resident_bytes Archive bytes resident in memory (whole buffer for heap, cached pages for paged, 0 otherwise).\n",
        );
        out.push_str("# TYPE perilsd_snapshot_resident_bytes gauge\n");
        out.push_str(&format!(
            "perilsd_snapshot_resident_bytes {resident_bytes}\n"
        ));

        out.push_str(
            "# HELP perilsd_page_cache_hits_total Page-cache hits (paged backend only).\n",
        );
        out.push_str("# TYPE perilsd_page_cache_hits_total counter\n");
        out.push_str(&format!("perilsd_page_cache_hits_total {}\n", cache.hits));

        out.push_str(
            "# HELP perilsd_page_cache_misses_total Page-cache misses, i.e. disk reads (paged backend only).\n",
        );
        out.push_str("# TYPE perilsd_page_cache_misses_total counter\n");
        out.push_str(&format!(
            "perilsd_page_cache_misses_total {}\n",
            cache.misses
        ));

        out.push_str(
            "# HELP perilsd_page_cache_evictions_total Pages evicted to stay under the --page-cache-mb budget.\n",
        );
        out.push_str("# TYPE perilsd_page_cache_evictions_total counter\n");
        out.push_str(&format!(
            "perilsd_page_cache_evictions_total {}\n",
            cache.evictions
        ));

        out.push_str("# HELP perilsd_reloads_total Completed snapshot reloads.\n");
        out.push_str("# TYPE perilsd_reloads_total counter\n");
        out.push_str(&format!(
            "perilsd_reloads_total {}\n",
            self.reloads.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP perilsd_reloads_failed_total Reloads rejected (unreadable or corrupt archive); the old generation kept serving.\n",
        );
        out.push_str("# TYPE perilsd_reloads_failed_total counter\n");
        out.push_str(&format!(
            "perilsd_reloads_failed_total {}\n",
            self.reloads_failed.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP perilsd_queue_depth Connections waiting for a worker.\n");
        out.push_str("# TYPE perilsd_queue_depth gauge\n");
        out.push_str(&format!(
            "perilsd_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP perilsd_queue_rejected_total Connections turned away at the cap.\n");
        out.push_str("# TYPE perilsd_queue_rejected_total counter\n");
        out.push_str(&format!(
            "perilsd_queue_rejected_total {}\n",
            self.queue_rejected.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP perilsd_connections_total Connections accepted.\n");
        out.push_str("# TYPE perilsd_connections_total counter\n");
        out.push_str(&format!(
            "perilsd_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP perilsd_workers Worker threads serving requests.\n");
        out.push_str("# TYPE perilsd_workers gauge\n");
        out.push_str(&format!("perilsd_workers {workers}\n"));

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bucket_and_class() {
        let m = Metrics::new();
        m.record(Endpoint::Name, 200, Duration::from_micros(300));
        m.record(Endpoint::Name, 404, Duration::from_micros(300_000));
        m.record(Endpoint::Reload, 202, Duration::from_micros(50));
        m.reload_failed();
        let text = m.render(
            3,
            Duration::from_secs(2),
            true,
            4,
            "loaded",
            41.5,
            "paged",
            128 * 1024,
            perils_util::CacheCounters {
                hits: 10,
                misses: 4,
                evictions: 2,
            },
        );
        assert!(text.contains("perilsd_requests_total{endpoint=\"name\"} 2"));
        assert!(text.contains("perilsd_snapshot_source{kind=\"built\"} 0"));
        assert!(text.contains("perilsd_snapshot_source{kind=\"loaded\"} 1"));
        assert!(text.contains("perilsd_snapshot_archive_load_ms 41.5"));
        assert!(text.contains("perilsd_snapshot_backend{kind=\"paged\"} 1"));
        assert!(text.contains("perilsd_snapshot_backend{kind=\"heap\"} 0"));
        assert!(text.contains("perilsd_snapshot_backend{kind=\"none\"} 0"));
        assert!(text.contains("perilsd_snapshot_resident_bytes 131072"));
        assert!(text.contains("perilsd_page_cache_hits_total 10"));
        assert!(text.contains("perilsd_page_cache_misses_total 4"));
        assert!(text.contains("perilsd_page_cache_evictions_total 2"));
        assert!(text.contains("perilsd_reloads_failed_total 1"));
        assert!(text.contains("perilsd_requests_total{endpoint=\"reload\"} 1"));
        assert!(text.contains("perilsd_responses_total{class=\"2xx\"} 2"));
        assert!(text.contains("perilsd_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("perilsd_request_duration_seconds_count 3"));
        assert!(text.contains("perilsd_snapshot_epoch 3"));
        assert!(text.contains("perilsd_snapshot_reloading 1"));
        assert!(text.contains("perilsd_workers 4"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Endpoint::Name, 200, Duration::from_micros(80)); // <= 100us
        m.record(Endpoint::Name, 200, Duration::from_micros(400)); // <= 500us
        m.record(Endpoint::Name, 200, Duration::from_secs(10)); // overflow
        let text = m.render(
            1,
            Duration::ZERO,
            false,
            1,
            "built",
            0.0,
            "none",
            0,
            perils_util::CacheCounters::default(),
        );
        assert!(text.contains("perilsd_request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("perilsd_request_duration_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("perilsd_request_duration_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("perilsd_request_duration_seconds_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn every_endpoint_appears_even_when_unused() {
        let text = Metrics::new().render(
            1,
            Duration::ZERO,
            false,
            1,
            "built",
            0.0,
            "none",
            0,
            perils_util::CacheCounters::default(),
        );
        assert!(text.contains("perilsd_snapshot_source{kind=\"built\"} 1"));
        assert!(text.contains("perilsd_snapshot_source{kind=\"loaded\"} 0"));
        assert!(text.contains("perilsd_snapshot_archive_load_ms 0"));
        assert!(text.contains("perilsd_snapshot_backend{kind=\"none\"} 1"));
        assert!(text.contains("perilsd_snapshot_resident_bytes 0"));
        assert!(text.contains("perilsd_page_cache_hits_total 0"));
        for endpoint in ENDPOINTS {
            assert!(
                text.contains(&format!("endpoint=\"{}\"", endpoint.label())),
                "missing endpoint label {}",
                endpoint.label()
            );
        }
    }
}
