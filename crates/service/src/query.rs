//! The data plane: per-name and per-zone answers out of a warm
//! snapshot.
//!
//! Every response here is a pure function of the snapshot — no clocks,
//! no counters — which is what makes the daemon's byte-identity
//! contract (same snapshot, same bytes, any `--threads`) hold on the
//! wire. Floats are formatted with Rust's shortest-roundtrip `Display`,
//! itself deterministic.
//!
//! The per-name answer is the paper's core artifact: the name's
//! delegation closure, its TCB tally, the flattened min vertex cut and
//! the hijackable verdict, plus per-subject lint diagnostics with their
//! evidence chains (the name itself and every zone on its chain).

use crate::http::Response;
use crate::snapshot::WorldSnapshot;
use perils_core::closure::ClosureWorkspace;
use perils_core::hijack::min_cut_flattened_view;
use perils_core::lint::{Diagnostic, LintCtx, RuleRegistry};
use perils_core::tcb::TcbTally;
use perils_core::universe::{ServerId, ZoneId};
use perils_dns::name::DnsName;
use perils_util::json::push_json_string;

/// Cap on `GET /names?limit=`.
const MAX_NAME_LIST: usize = 1000;
/// Default for `GET /names`.
const DEFAULT_NAME_LIST: usize = 20;

/// Appends `"key":"<name>"` with the DNS name in presentation form.
fn push_name_field(out: &mut String, key: &str, name: &DnsName) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_json_string(out, &name.to_string());
}

/// Serializes lint diagnostics (rule, severity, subject, message,
/// evidence chain) as a JSON array.
fn push_diagnostics(out: &mut String, diagnostics: &[Diagnostic]) {
    out.push('[');
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_string(out, d.rule);
        out.push_str(",\"severity\":");
        push_json_string(out, d.severity.label());
        out.push_str(",\"subject\":{\"kind\":");
        push_json_string(out, d.subject.kind());
        out.push(',');
        push_name_field(out, "name", d.subject.name());
        out.push_str("},\"message\":");
        push_json_string(out, &d.message);
        out.push_str(",\"evidence\":[");
        for (j, step) in d.evidence.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            push_name_field(out, "at", &step.at);
            out.push_str(",\"note\":");
            push_json_string(out, &step.note);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push(']');
}

/// Runs every registered rule over the given subject slices. Slices
/// must be ascending by id (the lint determinism contract).
fn lint_subjects(
    snap: &WorldSnapshot,
    rules: &RuleRegistry,
    zones: &[ZoneId],
    servers: &[ServerId],
    names: &[DnsName],
) -> Vec<Diagnostic> {
    let ctx = LintCtx {
        universe: &snap.universe,
        index: &snap.index,
        facts: &snap.lint,
        zones,
        servers,
        names,
    };
    let mut out = Vec::new();
    for rule in rules.iter() {
        out.extend(rule.check(&ctx));
    }
    out
}

/// `GET /name/<name>`: closure, TCB tally, min-cut, hijackable verdict
/// and lint diagnostics for one name.
pub fn name_response(
    snap: &WorldSnapshot,
    rules: &RuleRegistry,
    ws: &mut ClosureWorkspace,
    raw: &str,
) -> Response {
    let target = match DnsName::from_ascii(raw) {
        Ok(name) => name.to_lowercase(),
        Err(e) => return Response::error(400, &format!("bad name {raw:?}: {e:?}")),
    };
    let Some(zone) = snap.universe.zone_of(&target) else {
        return Response::error(404, &format!("name {target} is not covered by any zone"));
    };
    // Every name falls under the root when a root zone exists; a query
    // that resolves no deeper than the root is a miss, not an answer.
    if snap.universe.zone(zone).origin.is_root() && !target.is_root() {
        return Response::error(
            404,
            &format!("name {target} is not covered below the root zone"),
        );
    }
    let view = snap.index.closure_view(&snap.universe, &target, ws);
    let tally = TcbTally::compute(&snap.universe, &view);
    let cut = min_cut_flattened_view(&snap.universe, &snap.index, &view);
    let closure_servers = view.server_count();
    let closure_zones = view.zone_count();

    // Lint the name plus every zone on its delegation chain (ascending
    // by id, as the rule contract requires).
    let mut chain: Vec<ZoneId> = view.target_chain().to_vec();
    chain.sort_by_key(|z| z.index());
    let diagnostics = lint_subjects(snap, rules, &chain, &[], std::slice::from_ref(&target));

    let mut body = String::with_capacity(1024);
    body.push_str(&format!("{{\"epoch\":{},", snap.epoch));
    push_name_field(&mut body, "name", &target);
    body.push(',');
    push_name_field(&mut body, "zone", &snap.universe.zone(zone).origin);
    body.push_str(&format!(
        ",\"closure\":{{\"zones\":{closure_zones},\"servers\":{closure_servers}}}"
    ));
    body.push_str(&format!(
        ",\"tcb\":{{\"size\":{},\"nameowner\":{},\"vulnerable\":{},\"scripted\":{},\"safety_percent\":{}}}",
        tally.tcb_size,
        tally.nameowner_administered,
        tally.vulnerable,
        tally.scripted_vulnerable,
        tally.safety_percent(),
    ));
    match &cut {
        Some(set) => {
            body.push_str(&format!(
                ",\"min_cut\":{{\"size\":{},\"safe_members\":{},\"servers\":[",
                set.size(),
                set.safe_members
            ));
            for (i, &sid) in set.servers.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                push_json_string(&mut body, &snap.universe.server(sid).name.to_string());
            }
            body.push_str("]}");
        }
        None => body.push_str(",\"min_cut\":null"),
    }
    let hijackable = cut
        .as_ref()
        .map(|set| set.size() > 0 && set.fully_vulnerable())
        .unwrap_or(false);
    body.push_str(&format!(",\"hijackable\":{hijackable},\"lint\":"));
    push_diagnostics(&mut body, &diagnostics);
    body.push('}');
    Response::json(200, body)
}

/// `GET /zone/<zone>`: delegation facts and lint diagnostics for one
/// zone (its own NS servers included as lint subjects).
pub fn zone_response(snap: &WorldSnapshot, rules: &RuleRegistry, raw: &str) -> Response {
    let origin = match DnsName::from_ascii(raw) {
        Ok(name) => name.to_lowercase(),
        Err(e) => return Response::error(400, &format!("bad zone {raw:?}: {e:?}")),
    };
    let Some(zone) = snap.universe.zone_id(&origin) else {
        return Response::error(404, &format!("zone {origin} is not in the universe"));
    };
    let entry = snap.universe.zone(zone);
    let parent = snap.universe.parent_zone_of(zone);

    let mut servers: Vec<ServerId> = entry.ns.clone();
    servers.sort_by_key(|s| s.index());
    servers.dedup();
    let diagnostics = lint_subjects(snap, rules, std::slice::from_ref(&zone), &servers, &[]);

    let mut body = String::with_capacity(512);
    body.push_str(&format!("{{\"epoch\":{},", snap.epoch));
    push_name_field(&mut body, "zone", &entry.origin);
    body.push_str(",\"parent\":");
    match parent {
        Some(p) => push_json_string(&mut body, &snap.universe.zone(p).origin.to_string()),
        None => body.push_str("null"),
    }
    body.push_str(&format!(
        ",\"reachable\":{},\"ns\":[",
        snap.lint.zone_reachable(zone)
    ));
    for (i, &sid) in entry.ns.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let server = snap.universe.server(sid);
        body.push('{');
        push_name_field(&mut body, "name", &server.name);
        body.push_str(&format!(
            ",\"vulnerable\":{},\"scripted\":{},\"is_root\":{}}}",
            server.vulnerable, server.scripted_exploit, server.is_root
        ));
    }
    body.push_str("],\"lint\":");
    push_diagnostics(&mut body, &diagnostics);
    body.push('}');
    Response::json(200, body)
}

/// `GET /names[?limit=K]`: the surveyed names, in survey order — how a
/// client (or the CI smoke) discovers queryable names in a synthetic
/// world.
pub fn names_response(snap: &WorldSnapshot, query: Option<&str>) -> Response {
    let mut limit = DEFAULT_NAME_LIST;
    if let Some(query) = query {
        for pair in query.split('&') {
            match pair.split_once('=') {
                Some(("limit", value)) => match value.parse::<usize>() {
                    Ok(n) => limit = n.min(MAX_NAME_LIST),
                    Err(_) => return Response::error(400, &format!("bad limit {value:?}")),
                },
                _ => return Response::error(400, &format!("unknown query parameter {pair:?}")),
            }
        }
    }
    let mut body = String::with_capacity(64 + 24 * limit);
    body.push_str(&format!(
        "{{\"epoch\":{},\"total\":{},\"names\":[",
        snap.epoch,
        snap.names.len()
    ));
    for (i, surveyed) in snap.names.iter().take(limit).enumerate() {
        if i > 0 {
            body.push(',');
        }
        push_json_string(&mut body, &surveyed.name.to_string());
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /figures`: the cached sweep, or `404` when the daemon was
/// started with `--no-figures`.
pub fn figures_response(snap: &WorldSnapshot) -> Response {
    match &snap.figures_json {
        Some(json) => Response::json(200, json.clone()),
        None => Response::error(404, "figure sweep disabled (--no-figures)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::WorldSpec;
    use perils_util::json::{parse, Value};

    fn fbi_snapshot() -> WorldSnapshot {
        WorldSnapshot::build(&WorldSpec::Fbi, 1, 2, false)
    }

    fn body_of(response: &Response) -> Value {
        assert_eq!(response.status, 200, "body: {}", response.body);
        parse(&response.body).expect("response is valid JSON")
    }

    #[test]
    fn name_answer_has_the_paper_artifact_shape() {
        let snap = fbi_snapshot();
        let rules = RuleRegistry::builtin();
        let mut ws = snap.index.workspace();
        let response = name_response(&snap, &rules, &mut ws, "www.fbi.gov");
        let value = body_of(&response);
        assert_eq!(
            value.get("name").and_then(|v| v.as_str()),
            Some("www.fbi.gov")
        );
        assert_eq!(value.get("epoch").and_then(|v| v.as_u64()), Some(1));
        let tcb = value.get("tcb").expect("tcb object");
        assert!(tcb.get("size").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
        assert!(value.get("hijackable").and_then(|v| v.as_bool()).is_some());
        assert!(value.get("lint").and_then(|v| v.as_array()).is_some());
    }

    #[test]
    fn name_errors_are_typed() {
        let snap = fbi_snapshot();
        let rules = RuleRegistry::builtin();
        let mut ws = snap.index.workspace();
        assert_eq!(
            name_response(&snap, &rules, &mut ws, "no..dots").status,
            400
        );
        assert_eq!(
            name_response(&snap, &rules, &mut ws, "www.unknown.example").status,
            404
        );
    }

    #[test]
    fn zone_answer_lists_ns_and_diagnostics() {
        let snap = fbi_snapshot();
        let rules = RuleRegistry::builtin();
        let response = zone_response(&snap, &rules, "fbi.gov");
        let value = body_of(&response);
        let ns = value
            .get("ns")
            .and_then(|v| v.as_array())
            .expect("ns array");
        assert!(!ns.is_empty());
        assert!(value.get("parent").and_then(|v| v.as_str()).is_some());
    }

    #[test]
    fn names_limit_is_applied_and_validated() {
        let snap = fbi_snapshot();
        let value = body_of(&names_response(&snap, Some("limit=1")));
        assert_eq!(
            value
                .get("names")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(1)
        );
        assert!(value.get("total").and_then(|v| v.as_u64()).unwrap_or(0) >= 3);
        assert_eq!(names_response(&snap, Some("limit=x")).status, 400);
        assert_eq!(names_response(&snap, Some("frobnicate=1")).status, 400);
    }
}
