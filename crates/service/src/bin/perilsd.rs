//! `perilsd` — the TCB-as-a-service query daemon.
//!
//! ```text
//! perilsd [--world tiny|default|paper|fbi|cornell|tripwire] [--seed N]
//!         [--addr HOST:PORT] [--threads N] [--queue-cap N] [--no-figures]
//!         [--snapshot PATH] [--save-snapshot PATH]
//!         [--snapshot-backend heap|paged|copy] [--page-cache-mb N]
//! ```
//!
//! Builds the world once (or restores one from a `.psa` archive in
//! milliseconds with `--snapshot`), then serves it warm:
//!
//! * data plane — `GET /name/<name>`, `GET /zone/<zone>`, `GET /names`,
//!   `GET /figures`
//! * control plane — `POST /reload` (optional body `{"seed":N}` or
//!   `{"snapshot":"PATH"}`), `POST /shutdown` (drain and exit)
//! * observability — `GET /healthz`, `GET /metrics`
//!
//! Exit codes: **0** — clean drain after `POST /shutdown`; **1** — bind
//! or transport failure; **2** — usage error.

use perils_service::{Daemon, ServiceConfig, WorldSpec};
use std::net::TcpListener;

const USAGE: &str = "usage: perilsd [--world tiny|default|paper|fbi|cornell|tripwire] [--seed N]
               [--addr HOST:PORT] [--threads N] [--queue-cap N] [--no-figures]
               [--snapshot PATH] [--save-snapshot PATH]
               [--snapshot-backend heap|paged|copy] [--page-cache-mb N]

  --world WORLD   universe to serve: a seeded synthetic survey at tiny
                  (default), default, or paper scale; or the fbi.gov,
                  cornell Figure 1, or lint tripwire scenario
  --seed N        synthetic seed (default 20040722)
  --addr ADDR     listen address (default 127.0.0.1:8053; port 0 picks one)
  --threads N     worker threads, also used for snapshot builds
                  (default: available parallelism, max 16); data-plane
                  responses are byte-identical for every choice
  --queue-cap N   pending-connection cap; beyond it new connections get
                  503 (default 1024)
  --no-figures    skip the figure sweep at build time (GET /figures -> 404)
  --snapshot PATH       boot from a .psa archive instead of building
                        (--world/--seed still name the world plain
                        POST /reload rebuilds)
  --save-snapshot PATH  write the booted world to a .psa archive, then
                        keep serving
  --snapshot-backend B  byte store behind --snapshot boots and snapshot
                        reloads: heap (default; one resident buffer the
                        index views into), paged (bounded page cache over
                        the file), or copy (materialize everything)
  --page-cache-mb N     paged backend's cache budget in MiB (default 16;
                        only valid with --snapshot-backend paged)

endpoints: GET /name/<n> /zone/<z> /names /figures /healthz /metrics
           POST /reload /shutdown

exit codes: 0 = clean drain; 1 = bind/transport failure; 2 = usage error";

/// Prints a usage error and exits with status 2.
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    world: String,
    seed: u64,
    addr: String,
    config: ServiceConfig,
    snapshot: Option<String>,
    save_snapshot: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        world: "tiny".to_string(),
        seed: 20040722,
        addr: "127.0.0.1:8053".to_string(),
        config: ServiceConfig::default(),
        snapshot: None,
        save_snapshot: None,
    };
    let mut backend: Option<String> = None;
    let mut page_cache_mb: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value_of = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--world" => args.world = value_of("--world"),
            "--seed" => {
                args.seed = value_of("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed needs an unsigned integer"))
            }
            "--addr" => args.addr = value_of("--addr"),
            "--threads" => {
                args.config.threads = value_of("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads needs an unsigned integer"))
            }
            "--queue-cap" => {
                args.config.queue_cap = value_of("--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--queue-cap needs an unsigned integer"))
            }
            "--no-figures" => args.config.figures = false,
            "--snapshot" => args.snapshot = Some(value_of("--snapshot")),
            "--save-snapshot" => args.save_snapshot = Some(value_of("--save-snapshot")),
            "--snapshot-backend" => backend = Some(value_of("--snapshot-backend")),
            "--page-cache-mb" => {
                page_cache_mb = Some(
                    value_of("--page-cache-mb")
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage_error("--page-cache-mb needs an integer >= 1")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    if args.config.queue_cap == 0 {
        usage_error("--queue-cap must be at least 1");
    }
    use perils_survey::SnapshotBackend;
    args.config.backend = match backend.as_deref() {
        None | Some("heap") => {
            if page_cache_mb.is_some() {
                usage_error("--page-cache-mb is only valid with --snapshot-backend paged");
            }
            SnapshotBackend::Heap
        }
        Some("copy") => {
            if page_cache_mb.is_some() {
                usage_error("--page-cache-mb is only valid with --snapshot-backend paged");
            }
            SnapshotBackend::Copy
        }
        Some("paged") => SnapshotBackend::paged(page_cache_mb.unwrap_or(16) * 1024 * 1024),
        Some(other) => usage_error(&format!(
            "unknown snapshot backend {other:?} (heap|paged|copy)"
        )),
    };
    args
}

fn main() {
    let args = parse_args();
    let spec = match WorldSpec::parse(&args.world, args.seed) {
        Ok(spec) => spec,
        Err(message) => usage_error(&message),
    };

    let daemon = match &args.snapshot {
        Some(path) => {
            eprintln!(
                "perilsd: loading snapshot {path} ({} backend) ...",
                args.config.backend.kind()
            );
            match Daemon::boot_from_archive(spec, args.config, path) {
                Ok(daemon) => daemon,
                Err(e) => {
                    eprintln!("perilsd: cannot load snapshot {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("perilsd: building {} ...", spec.describe());
            Daemon::boot(spec, args.config)
        }
    };
    let snap = daemon.store().current();
    eprintln!(
        "perilsd: epoch {} ready ({}) in {:.2}s: {} names, {} zones, {} servers, {} figures{}",
        snap.epoch,
        snap.stats.source.kind(),
        snap.stats.build.as_secs_f64(),
        snap.stats.names,
        snap.stats.zones,
        snap.stats.servers,
        snap.stats.figures,
        perils_util::peak_rss_mb()
            .map(|mb| format!(", peak RSS {mb:.0} MiB"))
            .unwrap_or_default(),
    );
    if let Some(path) = &args.save_snapshot {
        match snap.save_archive(path) {
            Ok(bytes) => eprintln!("perilsd: snapshot saved to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("perilsd: cannot save snapshot to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    drop(snap);

    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("perilsd: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    // The one stdout line, for scripts that want the resolved port.
    println!(
        "perilsd listening on http://{local} ({} workers)",
        daemon.config().threads
    );

    match daemon.serve(listener) {
        Ok(summary) => {
            eprintln!(
                "perilsd: drained cleanly: {} connections, {} requests, {} reloads",
                summary.connections, summary.requests, summary.reloads
            );
        }
        Err(e) => {
            eprintln!("perilsd: transport failure: {e}");
            std::process::exit(1);
        }
    }
}
