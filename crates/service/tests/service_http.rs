//! End-to-end daemon tests over real sockets: the determinism contract
//! on the wire, snapshot swaps racing live queries, and clean drain.

#![forbid(unsafe_code)]

use perils_service::{Daemon, ServeSummary, ServiceConfig, WorldSpec};
use perils_util::json::{self, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Boots a tiny-world daemon with `threads` workers.
fn tiny_daemon(threads: usize, figures: bool) -> Daemon {
    Daemon::boot(
        WorldSpec::parse("tiny", 20040722).expect("tiny parses"),
        ServiceConfig {
            threads,
            queue_cap: 64,
            figures,
            ..ServiceConfig::default()
        },
    )
}

/// Runs `client` against a serving daemon, then drains it and returns
/// both results. The daemon serves on an ephemeral port; everything is
/// joined before returning.
fn with_daemon<R: Send>(
    daemon: &Daemon,
    client: impl FnOnce(SocketAddr) -> R + Send,
) -> (R, ServeSummary) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    let mut summary = None;
    let mut result = None;
    crossbeam::thread::scope(|scope| {
        let serving = scope.spawn(|_| daemon.serve(listener).expect("serve exits cleanly"));
        result = Some(client(addr));
        // Drain: ask over the wire like a real operator would.
        let mut shutdown = Client::connect(addr);
        let (status, _, _) = shutdown.request("POST", "/shutdown", None);
        assert_eq!(status, 200);
        summary = Some(serving.join().expect("serve thread"));
    })
    .expect("scoped threads");
    (result.expect("client ran"), summary.expect("summary"))
}

/// A hand-rolled keep-alive HTTP client.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Sends one request and reads one response. Returns the status,
    /// the raw response bytes, and the body.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Vec<u8>, String) {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.0\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.reader
            .get_mut()
            .write_all(request.as_bytes())
            .expect("send");

        let mut raw = Vec::new();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_ascii_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        raw.extend_from_slice(line.as_bytes());
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            raw.extend_from_slice(header.as_bytes());
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(value) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().expect("content length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        raw.extend_from_slice(&body);
        (status, raw, String::from_utf8(body).expect("utf8 body"))
    }

    /// Sends a `HEAD` request and reads only what a HEAD exchange
    /// leaves on the wire: status line + headers, no body. Returns the
    /// status and the advertised `Content-Length`.
    fn head(&mut self, path: &str) -> (u16, usize) {
        let request =
            format!("HEAD {path} HTTP/1.0\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n");
        self.reader
            .get_mut()
            .write_all(request.as_bytes())
            .expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_ascii_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(value) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().expect("content length");
            }
        }
        (status, content_length)
    }

    /// A request whose body must parse as JSON; returns (status, value).
    fn json(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
        let (status, _, text) = self.request(method, path, body);
        let value = json::parse(&text)
            .unwrap_or_else(|e| panic!("{method} {path}: invalid JSON ({e}): {text}"));
        (status, value)
    }
}

fn epoch_of(value: &Value) -> u64 {
    value
        .get("epoch")
        .and_then(|v| v.as_u64())
        .expect("epoch field")
}

#[test]
fn data_plane_is_byte_identical_across_thread_counts() {
    let mut transcripts: Vec<Vec<Vec<u8>>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let daemon = tiny_daemon(threads, true);
        let (transcript, _) = with_daemon(&daemon, |addr| {
            let mut client = Client::connect(addr);
            let mut raws = Vec::new();
            let (status, raw, names) = client.request("GET", "/names?limit=3", None);
            assert_eq!(status, 200);
            raws.push(raw);
            let names = json::parse(&names).expect("names JSON");
            let names: Vec<String> = names
                .get("names")
                .and_then(|v| v.as_array())
                .expect("names array")
                .iter()
                .map(|v| v.as_str().expect("name string").to_string())
                .collect();
            assert!(!names.is_empty());
            for name in &names {
                let (status, raw, body) = client.request("GET", &format!("/name/{name}"), None);
                assert_eq!(status, 200, "{body}");
                raws.push(raw);
                // Follow the answer to its zone, like a client drilling down.
                let zone = json::parse(&body)
                    .expect("name JSON")
                    .get("zone")
                    .and_then(|v| v.as_str())
                    .expect("zone field")
                    .to_string();
                let (status, raw, _) = client.request("GET", &format!("/zone/{zone}"), None);
                assert_eq!(status, 200);
                raws.push(raw);
            }
            let (status, raw, _) = client.request("GET", "/figures", None);
            assert_eq!(status, 200);
            raws.push(raw);
            raws
        });
        transcripts.push(transcript);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "1-thread and 2-thread responses differ"
    );
    assert_eq!(
        transcripts[1], transcripts[2],
        "2-thread and 8-thread responses differ"
    );
}

#[test]
fn reload_under_load_keeps_epochs_monotonic_per_connection() {
    const RELOADS: u64 = 3;
    const QUERY_CLIENTS: usize = 3;

    let daemon = tiny_daemon(4, false);
    let done = AtomicBool::new(false);
    let ((), summary) = with_daemon(&daemon, |addr| {
        crossbeam::thread::scope(|scope| {
            for _ in 0..QUERY_CLIENTS {
                scope.spawn(|_| {
                    let mut client = Client::connect(addr);
                    let (status, names) = client.json("GET", "/names?limit=1", None);
                    assert_eq!(status, 200);
                    let name = names
                        .get("names")
                        .and_then(|v| v.as_array())
                        .and_then(|a| a.first())
                        .and_then(|v| v.as_str())
                        .expect("first name")
                        .to_string();
                    let path = format!("/name/{name}");
                    let mut last_epoch = 0u64;
                    let mut queries = 0u64;
                    while !done.load(Ordering::SeqCst) || queries < 5 {
                        let (status, value) = client.json("GET", &path, None);
                        assert_eq!(status, 200);
                        let epoch = epoch_of(&value);
                        assert!(
                            epoch >= last_epoch,
                            "epoch went backwards on one connection: {last_epoch} -> {epoch}"
                        );
                        last_epoch = epoch;
                        queries += 1;
                    }
                });
            }

            // The control client: drive RELOADS generation bumps while
            // the query clients hammer the data plane.
            let mut control = Client::connect(addr);
            for round in 0..RELOADS {
                let (status, value) = control.json("POST", "/reload", None);
                assert_eq!(status, 202, "reload must never fail");
                assert_eq!(
                    value.get("status").and_then(|v| v.as_str()),
                    Some("scheduled")
                );
                let target = round + 2;
                loop {
                    let (status, health) = control.json("GET", "/healthz", None);
                    assert_eq!(status, 200);
                    if epoch_of(&health) >= target {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            done.store(true, Ordering::SeqCst);
        })
        .expect("load clients");
    });
    assert_eq!(summary.reloads, RELOADS);
    assert_eq!(daemon.store().epoch(), 1 + RELOADS);
    assert!(summary.requests > RELOADS * 2);
}

#[test]
fn head_on_keep_alive_does_not_desync_the_connection() {
    let daemon = tiny_daemon(1, false);
    let ((), _) = with_daemon(&daemon, |addr| {
        let mut client = Client::connect(addr);
        let (status, content_length) = client.head("/healthz");
        assert_eq!(status, 200);
        assert!(content_length > 0, "HEAD still advertises the body length");
        // Had the daemon written body bytes for the HEAD, this next
        // exchange on the same connection would read them as its status
        // line and fail.
        let (status, health) = client.json("GET", "/healthz", None);
        assert_eq!(status, 200);
        assert_eq!(epoch_of(&health), 1);
    });
}

#[test]
fn shutdown_drains_cleanly_and_counts_work() {
    let daemon = tiny_daemon(2, false);
    let (queries, summary) = with_daemon(&daemon, |addr| {
        let mut client = Client::connect(addr);
        let mut queries = 0u64;
        let (status, _) = client.json("GET", "/healthz", None);
        assert_eq!(status, 200);
        queries += 1;
        let (status, metrics, _) = client.request("GET", "/metrics", None);
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).expect("metrics utf8");
        assert!(text.contains("perilsd_snapshot_epoch 1"));
        assert!(text.contains("perilsd_requests_total{endpoint=\"healthz\"} 1"));
        queries += 1;
        queries
    });
    // Strictly greater: the shutdown request itself is counted too.
    assert!(summary.requests > queries, "summary: {summary:?}");
    assert!(daemon.is_shutting_down());
    assert_eq!(summary.reloads, 0);
}

/// Strips every `"epoch":N` occurrence so data-plane bodies can be
/// compared across generations.
fn strip_epochs(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(at) = rest.find("\"epoch\":") {
        let after = at + "\"epoch\":".len();
        out.push_str(&rest[..after]);
        out.push('E');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Every data-plane answer for a connection: all `/name/<n>` bodies (in
/// `/names` order), plus `/names` and `/figures` themselves.
fn transcript(client: &mut Client) -> String {
    let (status, names) = client.json("GET", "/names", None);
    assert_eq!(status, 200);
    let list: Vec<String> = names
        .get("names")
        .and_then(|v| v.as_array())
        .expect("names array")
        .iter()
        .map(|v| v.as_str().expect("name string").to_string())
        .collect();
    assert!(!list.is_empty());
    let mut out = String::new();
    for name in &list {
        let (status, _, body) = client.request("GET", &format!("/name/{name}"), None);
        assert_eq!(status, 200, "{name}");
        out.push_str(&body);
        out.push('\n');
    }
    let (_, _, names_body) = client.request("GET", "/names", None);
    out.push_str(&names_body);
    let (status, _, figures) = client.request("GET", "/figures", None);
    assert_eq!(status, 200);
    out.push_str(&figures);
    out
}

/// The tentpole contract on the wire: a daemon that saved its world to a
/// `.psa` archive serves byte-identical data-plane answers (modulo the
/// epoch stamp) after a snapshot-served `POST /reload`, and a second
/// daemon cold-booted from the same archive matches too.
#[test]
fn snapshot_reload_and_cold_boot_serve_identical_answers() {
    let archive = std::env::temp_dir().join(format!("perilsd_http_{}.psa", std::process::id()));
    let daemon = tiny_daemon(2, true);
    daemon
        .store()
        .current()
        .save_archive(&archive)
        .expect("save archive");

    let ((before, after), summary) = with_daemon(&daemon, |addr| {
        let mut client = Client::connect(addr);
        let before = transcript(&mut client);

        let body = format!("{{\"snapshot\":{:?}}}", archive.display().to_string());
        let (status, reply) = client.json("POST", "/reload", Some(&body));
        assert_eq!(status, 202, "{reply:?}");
        // Wait for the swap: the epoch advances when the archive is live.
        for _ in 0..200 {
            let (_, health) = client.json("GET", "/healthz", None);
            if epoch_of(&health) == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let (_, health) = client.json("GET", "/healthz", None);
        assert_eq!(epoch_of(&health), 2, "snapshot reload never landed");
        let (_, _, metrics) = client.request("GET", "/metrics", None);
        assert!(metrics.contains("perilsd_snapshot_source{kind=\"loaded\"} 1"));
        assert!(metrics.contains("perilsd_reloads_failed_total 0"));

        (before, transcript(&mut client))
    });
    assert_eq!(summary.reloads, 1);
    assert_eq!(strip_epochs(&before), strip_epochs(&after));

    let cold = Daemon::boot_from_archive(
        WorldSpec::parse("tiny", 20040722).expect("tiny parses"),
        ServiceConfig {
            threads: 2,
            queue_cap: 64,
            figures: true,
            ..ServiceConfig::default()
        },
        archive.to_str().expect("utf8 path"),
    )
    .expect("cold boot from archive");
    let (cold_transcript, _) = with_daemon(&cold, |addr| transcript(&mut Client::connect(addr)));
    assert_eq!(strip_epochs(&before), strip_epochs(&cold_transcript));

    // A paged boot over the same archive, squeezed to a two-page cache,
    // serves the same data-plane bytes as the heap boot above.
    let paged = Daemon::boot_from_archive(
        WorldSpec::parse("tiny", 20040722).expect("tiny parses"),
        ServiceConfig {
            threads: 2,
            queue_cap: 64,
            figures: true,
            backend: perils_survey::SnapshotBackend::paged(8192),
        },
        archive.to_str().expect("utf8 path"),
    )
    .expect("paged boot from archive");
    let (paged_transcript, _) = with_daemon(&paged, |addr| {
        let mut client = Client::connect(addr);
        let t = transcript(&mut client);
        let (_, _, metrics) = client.request("GET", "/metrics", None);
        assert!(metrics.contains("perilsd_snapshot_backend{kind=\"paged\"} 1"));
        t
    });
    assert_eq!(strip_epochs(&before), strip_epochs(&paged_transcript));

    // A reload pointing at garbage keeps the old generation serving.
    let ((), _) = with_daemon(&tiny_daemon(1, false), |addr| {
        let mut client = Client::connect(addr);
        let (status, _) = client.json(
            "POST",
            "/reload",
            Some("{\"snapshot\":\"/nonexistent/world.psa\"}"),
        );
        assert_eq!(status, 202);
        std::thread::sleep(Duration::from_millis(200));
        let (_, health) = client.json("GET", "/healthz", None);
        assert_eq!(epoch_of(&health), 1, "failed reload must not swap");
        let (_, _, metrics) = client.request("GET", "/metrics", None);
        assert!(metrics.contains("perilsd_reloads_failed_total 1"));
        assert!(metrics.contains("perilsd_snapshot_source{kind=\"built\"} 1"));
    });

    std::fs::remove_file(&archive).ok();
}
