//! Whole-world `.psa` archives: one file holding everything a query
//! daemon or figure run needs — the canonical [`Universe`], its
//! [`DependencyIndex`], the shared [`LintIndex`] facts, the surveyed
//! names with their popularity structure, and (optionally) the rendered
//! figure JSON — so a restart is a bulk read instead of a rebuild.
//!
//! Layout (all sections little-endian, checksummed by the container):
//!
//! | tag        | contents                                             |
//! |------------|------------------------------------------------------|
//! | `WORLDHDR` | dimensions + figure count, cross-checked on load     |
//! | `UNIVERSE` | zones, servers, ancestor tables                      |
//! | `DEPINDEX` | zone rows, SCC map, interner arenas                  |
//! | `LINTIDX`  | depth/cycle index, liveness, reachability, referenced|
//! | `SURVNAME` | surveyed names, ranks, top-500 indices               |
//! | `FIGURES`  | rendered figure JSON (optional, stored verbatim)     |
//!
//! Loading validates each section against the universe's dimensions (see
//! [`perils_core::snapshot`]) and cross-checks the header, so corrupt or
//! mismatched archives produce a typed [`SnapshotError`], never a panic.

use crate::topology::SurveyName;
use perils_core::snapshot::{
    decode_dep_index, decode_lint, decode_name, decode_universe, encode_dep_index, encode_lint,
    encode_name, encode_universe, SECTION_DEP_INDEX, SECTION_LINT, SECTION_UNIVERSE,
};
use perils_core::universe::Universe;
use perils_core::{DependencyIndex, LintIndex};
use perils_util::snapshot::{self, Archive, ArchiveWriter, Dec, SnapshotError};
use std::path::Path;

/// Section tag for the world header (dimension cross-checks).
pub const SECTION_HEADER: [u8; 8] = *b"WORLDHDR";
/// Section tag for the surveyed-name list.
pub const SECTION_NAMES: [u8; 8] = *b"SURVNAME";
/// Section tag for the rendered figure JSON (optional).
pub const SECTION_FIGURES: [u8; 8] = *b"FIGURES\0";

/// A world reconstituted from a `.psa` archive — everything owned, ready
/// to serve queries or run figure/lint passes without any rebuild.
#[derive(Debug)]
pub struct LoadedWorld {
    /// The canonical universe.
    pub universe: Universe,
    /// Its dependency index, validated against the universe.
    pub index: DependencyIndex,
    /// The shared lint facts, validated against the universe.
    pub lint: LintIndex,
    /// The surveyed names, in survey order.
    pub names: Vec<SurveyName>,
    /// Indices into `names` of the most popular subset.
    pub top500: Vec<usize>,
    /// The rendered figure JSON stored at save time, verbatim.
    pub figures_json: Option<String>,
    /// How many figures that JSON holds (from the header, so consumers
    /// need not parse the JSON to report the count).
    pub figures_rendered: usize,
    /// Total archive size in bytes.
    pub archive_bytes: u64,
}

/// Serializes a built world to `bytes` (see the module table for the
/// layout). `figures` carries the rendered figure JSON plus its figure
/// count, when the saver has one.
pub fn world_archive_bytes(
    universe: &Universe,
    index: &DependencyIndex,
    lint: &LintIndex,
    names: &[SurveyName],
    top500: &[usize],
    figures: Option<(&str, usize)>,
) -> Vec<u8> {
    let mut header = Vec::new();
    snapshot::put_u32(
        &mut header,
        u32::try_from(universe.zone_count()).expect("zone count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(universe.server_count()).expect("server count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(names.len()).expect("name count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(figures.map_or(0, |(_, n)| n)).expect("figure count fits u32"),
    );
    snapshot::put_u8(&mut header, u8::from(figures.is_some()));

    let mut name_section = Vec::new();
    snapshot::put_u32(
        &mut name_section,
        u32::try_from(names.len()).expect("name count fits u32"),
    );
    for entry in names {
        encode_name(&mut name_section, &entry.name);
        encode_name(&mut name_section, &entry.tld);
        snapshot::put_u32(
            &mut name_section,
            u32::try_from(entry.popularity_rank).expect("rank fits u32"),
        );
    }
    let top500_u32: Vec<u32> = top500
        .iter()
        .map(|&i| u32::try_from(i).expect("top500 index fits u32"))
        .collect();
    snapshot::put_u32_slice(&mut name_section, &top500_u32);

    let mut writer = ArchiveWriter::new();
    writer.add_section(SECTION_HEADER, header);
    writer.add_section(SECTION_UNIVERSE, encode_universe(universe));
    writer.add_section(SECTION_DEP_INDEX, encode_dep_index(index));
    writer.add_section(SECTION_LINT, encode_lint(lint));
    writer.add_section(SECTION_NAMES, name_section);
    if let Some((json, _)) = figures {
        writer.add_section(SECTION_FIGURES, json.as_bytes().to_vec());
    }
    writer.to_bytes()
}

/// [`world_archive_bytes`] written to `path`; returns the bytes written.
pub fn save_world(
    path: impl AsRef<Path>,
    universe: &Universe,
    index: &DependencyIndex,
    lint: &LintIndex,
    names: &[SurveyName],
    top500: &[usize],
    figures: Option<(&str, usize)>,
) -> Result<u64, SnapshotError> {
    let bytes = world_archive_bytes(universe, index, lint, names, top500, figures);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a world from in-memory archive bytes.
pub fn load_world_bytes(bytes: Vec<u8>) -> Result<LoadedWorld, SnapshotError> {
    let archive = Archive::from_bytes(bytes)?;
    load_world_archive(&archive)
}

/// Loads a world from a `.psa` file: one bulk read, then per-section
/// chunk decoding.
pub fn load_world(path: impl AsRef<Path>) -> Result<LoadedWorld, SnapshotError> {
    let archive = Archive::read_from_path(path)?;
    load_world_archive(&archive)
}

fn load_world_archive(archive: &Archive) -> Result<LoadedWorld, SnapshotError> {
    let mut header = Dec::new(archive.section(SECTION_HEADER)?, "WORLDHDR");
    let zone_count = header.u32()? as usize;
    let server_count = header.u32()? as usize;
    let name_count = header.u32()? as usize;
    let figures_rendered = header.u32()? as usize;
    let has_figures = match header.u8()? {
        0 => false,
        1 => true,
        other => return Err(header.malformed(format!("figure flag {other} is not 0/1"))),
    };
    header.finish()?;

    let universe = decode_universe(archive.section(SECTION_UNIVERSE)?)?;
    if universe.zone_count() != zone_count || universe.server_count() != server_count {
        return Err(Dec::new(&[], "WORLDHDR").malformed(format!(
            "header declares {zone_count} zones / {server_count} servers, universe holds {} / {}",
            universe.zone_count(),
            universe.server_count()
        )));
    }
    let index = decode_dep_index(archive.section(SECTION_DEP_INDEX)?, &universe)?;
    let lint = decode_lint(archive.section(SECTION_LINT)?, &universe)?;

    let mut dec = Dec::new(archive.section(SECTION_NAMES)?, "SURVNAME");
    let count = dec.u32()? as usize;
    if count != name_count {
        return Err(dec.malformed(format!(
            "header declares {name_count} names, section holds {count}"
        )));
    }
    let mut names = Vec::with_capacity(count.min(dec.remaining()));
    for _ in 0..count {
        let name = decode_name(&mut dec)?;
        let tld = decode_name(&mut dec)?;
        let popularity_rank = dec.u32()? as usize;
        names.push(SurveyName {
            name,
            tld,
            popularity_rank,
        });
    }
    let top500: Vec<usize> = dec.u32_vec()?.into_iter().map(|i| i as usize).collect();
    if let Some(&bad) = top500.iter().find(|&&i| i >= names.len()) {
        return Err(dec.malformed(format!("top500 index {bad} of {} names", names.len())));
    }
    dec.finish()?;

    let figures_json = match archive.optional_section(SECTION_FIGURES) {
        Some(bytes) => Some(
            String::from_utf8(bytes.to_vec())
                .map_err(|e| Dec::new(&[], "FIGURES").malformed(format!("not UTF-8: {e}")))?,
        ),
        None => None,
    };
    if figures_json.is_some() != has_figures {
        return Err(Dec::new(&[], "WORLDHDR")
            .malformed("figure flag disagrees with FIGURES section presence".to_string()));
    }

    Ok(LoadedWorld {
        universe,
        index,
        lint,
        names,
        top500,
        figures_json,
        figures_rendered,
        archive_bytes: archive.len_bytes(),
    })
}
