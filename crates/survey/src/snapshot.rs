//! Whole-world `.psa` archives: one file holding everything a query
//! daemon or figure run needs — the canonical [`Universe`], its
//! [`DependencyIndex`], the shared [`LintIndex`] facts, the surveyed
//! names with their popularity structure, and (optionally) the rendered
//! figure JSON — so a restart is a bulk read instead of a rebuild.
//!
//! Layout (all sections little-endian, checksummed by the container):
//!
//! | tag        | contents                                             |
//! |------------|------------------------------------------------------|
//! | `WORLDHDR` | dimensions + figure count, cross-checked on load     |
//! | `UNIVERSE` | zones, servers, ancestor tables                      |
//! | `DEPINDEX` | zone rows, SCC map, interner arenas                  |
//! | `LINTIDX`  | depth/cycle index, liveness, reachability, referenced|
//! | `SURVNAME` | surveyed names, ranks, top-500 indices               |
//! | `FIGURES`  | rendered figure JSON (optional, stored verbatim)     |
//!
//! Loading validates each section against the universe's dimensions (see
//! [`perils_core::snapshot`]) and cross-checks the header, so corrupt or
//! mismatched archives produce a typed [`SnapshotError`], never a panic.

use crate::topology::SurveyName;
use perils_core::snapshot::{
    decode_dep_index, decode_lint, decode_name, decode_universe, encode_dep_index, encode_lint,
    encode_name, encode_universe, validate_name, SECTION_DEP_INDEX, SECTION_LINT, SECTION_UNIVERSE,
};
use perils_core::universe::Universe;
use perils_core::{DependencyIndex, LintIndex};
use perils_util::bytestore::ByteStore;
use perils_util::snapshot::{
    self, Archive, ArchiveWriter, Dec, DecodeMode, Section, SnapshotError,
};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Section tag for the world header (dimension cross-checks).
pub const SECTION_HEADER: [u8; 8] = *b"WORLDHDR";
/// Section tag for the surveyed-name list.
pub const SECTION_NAMES: [u8; 8] = *b"SURVNAME";
/// Section tag for the rendered figure JSON (optional).
pub const SECTION_FIGURES: [u8; 8] = *b"FIGURES\0";

/// Default page size for [`SnapshotBackend::paged`]: one typical OS page
/// per cache slot.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// How [`load_world_with`] materializes an archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotBackend {
    /// Parse every section into owned heap structures; the archive bytes
    /// are dropped after the load (the classic decode).
    Copy,
    /// Keep the whole archive resident once as `Arc<[u8]>`; the big flat
    /// tables become zero-copy views borrowing it.
    Heap,
    /// Leave the archive on disk behind a fixed-budget page cache; views
    /// fault bytes in on demand, so resident memory is the cache plus the
    /// eagerly decoded sections, not the world.
    Paged {
        /// Bytes per cache page.
        page_bytes: usize,
        /// Total cache budget in bytes (clamped to two pages).
        budget_bytes: u64,
    },
}

impl SnapshotBackend {
    /// A paged backend with [`DEFAULT_PAGE_BYTES`] pages.
    pub fn paged(budget_bytes: u64) -> SnapshotBackend {
        SnapshotBackend::Paged {
            page_bytes: DEFAULT_PAGE_BYTES,
            budget_bytes,
        }
    }

    /// Stable label for logs and metrics: `"copy"`, `"heap"` or
    /// `"paged"`.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotBackend::Copy => "copy",
            SnapshotBackend::Heap => "heap",
            SnapshotBackend::Paged { .. } => "paged",
        }
    }
}

/// Upper bound on one encoded `SURVNAME` record: two names (a name's
/// encoding — count byte plus per-label length and content bytes — is
/// exactly its wire length, capped at
/// [`perils_dns::name::MAX_NAME_LEN`]) plus the `u32` rank.
const MAX_NAME_RECORD_BYTES: usize = 2 * perils_dns::name::MAX_NAME_LEN + 4;

/// The surveyed-name list of a loaded world.
///
/// Copy decodes materialize every entry up front (`Owned`); view decodes
/// keep the records in the archive's byte store and decode them on
/// demand (`View`) — the dominant cost *and* resident footprint of the
/// `SURVNAME` section disappears from the load, and a paged daemon
/// serving `/names` touches only the pages the response needs.
#[derive(Clone)]
pub enum NameTable {
    /// Every entry decoded eagerly (the classic decode).
    Owned(Vec<SurveyName>),
    /// Records validated at load, decoded per access from the store.
    View(NameTableView),
}

/// The view half of [`NameTable`]: record boundaries into the `SURVNAME`
/// section, established by a full validation walk at load time — so
/// per-access decodes cannot fail (enforced with the same
/// changed-on-disk panic contract as [`ByteStore::read`]).
#[derive(Clone)]
pub struct NameTableView {
    store: Arc<ByteStore>,
    /// Absolute offset of the section payload in the store.
    base: u64,
    /// Section-relative record boundaries: record `i` spans
    /// `bounds[i]..bounds[i + 1]` (count + 1 entries).
    bounds: Arc<Vec<u32>>,
}

impl NameTableView {
    fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    fn record(&self, i: usize) -> SurveyName {
        let start = self.bounds[i] as usize;
        let len = self.bounds[i + 1] as usize - start;
        let mut buf = [0u8; MAX_NAME_RECORD_BYTES];
        let buf = &mut buf[..len];
        self.store.read(self.base + start as u64, buf);
        let mut dec = Dec::new_at(buf, "SURVNAME", self.base + start as u64);
        decode_record(&mut dec)
            .expect("SURVNAME record validated at load no longer decodes (file changed on disk?)")
    }

    /// Materializes every record with one bulk read instead of
    /// per-record store round-trips.
    fn to_vec(&self) -> Vec<SurveyName> {
        let count = self.len();
        if count == 0 {
            return Vec::new();
        }
        let start = self.bounds[0] as u64;
        let end = self.bounds[count] as u64;
        let bytes = self
            .store
            .read_range(self.base + start..self.base + end, "SURVNAME records")
            .expect("SURVNAME records validated at load no longer read (file changed on disk?)");
        let mut dec = Dec::new_at(&bytes, "SURVNAME", self.base + start);
        (0..count)
            .map(|_| {
                decode_record(&mut dec).expect(
                    "SURVNAME record validated at load no longer decodes (file changed on disk?)",
                )
            })
            .collect()
    }
}

/// Decodes one name/tld/rank record (see [`world_archive_bytes`]).
fn decode_record(dec: &mut Dec<'_>) -> Result<SurveyName, SnapshotError> {
    Ok(SurveyName {
        name: decode_name(dec)?,
        tld: decode_name(dec)?,
        popularity_rank: dec.u32()? as usize,
    })
}

impl NameTable {
    /// Number of surveyed names.
    pub fn len(&self) -> usize {
        match self {
            NameTable::Owned(names) => names.len(),
            NameTable::View(view) => view.len(),
        }
    }

    /// True when no names were surveyed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th entry (panics out of bounds, like indexing).
    pub fn get(&self, i: usize) -> SurveyName {
        match self {
            NameTable::Owned(names) => names[i].clone(),
            NameTable::View(view) => view.record(i),
        }
    }

    /// The first entry, if any.
    pub fn first(&self) -> Option<SurveyName> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// Iterates entries in survey order.
    pub fn iter(&self) -> impl Iterator<Item = SurveyName> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Every entry as an owned vec (cloning/decoding as needed).
    pub fn to_vec(&self) -> Vec<SurveyName> {
        match self {
            NameTable::Owned(names) => names.clone(),
            NameTable::View(view) => view.to_vec(),
        }
    }

    /// [`NameTable::to_vec`] without the clone for owned tables.
    pub fn into_vec(self) -> Vec<SurveyName> {
        match self {
            NameTable::Owned(names) => names,
            NameTable::View(ref view) => view.to_vec(),
        }
    }

    /// Stable label for logs: `"owned"` or `"view"`.
    pub fn kind(&self) -> &'static str {
        match self {
            NameTable::Owned(_) => "owned",
            NameTable::View(_) => "view",
        }
    }
}

impl From<Vec<SurveyName>> for NameTable {
    fn from(names: Vec<SurveyName>) -> NameTable {
        NameTable::Owned(names)
    }
}

impl fmt::Debug for NameTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameTable")
            .field("kind", &self.kind())
            .field("len", &self.len())
            .finish()
    }
}

impl PartialEq for NameTable {
    fn eq(&self, other: &NameTable) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl PartialEq<[SurveyName]> for NameTable {
    fn eq(&self, other: &[SurveyName]) -> bool {
        self.len() == other.len() && self.iter().zip(other).all(|(a, b)| a == *b)
    }
}

impl PartialEq<Vec<SurveyName>> for NameTable {
    fn eq(&self, other: &Vec<SurveyName>) -> bool {
        self == other.as_slice()
    }
}

/// A world reconstituted from a `.psa` archive — ready to serve queries
/// or run figure/lint passes without any rebuild. Depending on the
/// [`SnapshotBackend`], the dependency index's flat tables and the name
/// table are either owned (`Copy`) or views into [`LoadedWorld::store`].
#[derive(Debug)]
pub struct LoadedWorld {
    /// The canonical universe.
    pub universe: Universe,
    /// Its dependency index, validated against the universe.
    pub index: DependencyIndex,
    /// The shared lint facts, validated against the universe.
    pub lint: LintIndex,
    /// The surveyed names, in survey order.
    pub names: NameTable,
    /// Indices into `names` of the most popular subset.
    pub top500: Vec<usize>,
    /// The rendered figure JSON stored at save time, verbatim.
    pub figures_json: Option<String>,
    /// How many figures that JSON holds (from the header, so consumers
    /// need not parse the JSON to report the count).
    pub figures_rendered: usize,
    /// Total archive size in bytes.
    pub archive_bytes: u64,
    /// The byte store view-backed structures borrow, `None` when the
    /// load copied everything (the store was dropped). Exposes backend
    /// kind, resident bytes and page-cache counters for metrics.
    pub store: Option<Arc<ByteStore>>,
}

impl LoadedWorld {
    /// Backend label: `"copy"` when no store is retained, otherwise the
    /// store's kind (`"heap"`/`"paged"`).
    pub fn backend_kind(&self) -> &'static str {
        self.store.as_ref().map_or("copy", |s| s.kind())
    }
}

/// Serializes a built world to `bytes` (see the module table for the
/// layout). `figures` carries the rendered figure JSON plus its figure
/// count, when the saver has one.
pub fn world_archive_bytes(
    universe: &Universe,
    index: &DependencyIndex,
    lint: &LintIndex,
    names: &[SurveyName],
    top500: &[usize],
    figures: Option<(&str, usize)>,
) -> Vec<u8> {
    let mut header = Vec::new();
    snapshot::put_u32(
        &mut header,
        u32::try_from(universe.zone_count()).expect("zone count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(universe.server_count()).expect("server count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(names.len()).expect("name count fits u32"),
    );
    snapshot::put_u32(
        &mut header,
        u32::try_from(figures.map_or(0, |(_, n)| n)).expect("figure count fits u32"),
    );
    snapshot::put_u8(&mut header, u8::from(figures.is_some()));

    let mut name_section = Vec::new();
    snapshot::put_u32(
        &mut name_section,
        u32::try_from(names.len()).expect("name count fits u32"),
    );
    for entry in names {
        encode_name(&mut name_section, &entry.name);
        encode_name(&mut name_section, &entry.tld);
        snapshot::put_u32(
            &mut name_section,
            u32::try_from(entry.popularity_rank).expect("rank fits u32"),
        );
    }
    let top500_u32: Vec<u32> = top500
        .iter()
        .map(|&i| u32::try_from(i).expect("top500 index fits u32"))
        .collect();
    snapshot::put_u32_slice(&mut name_section, &top500_u32);

    let mut writer = ArchiveWriter::new();
    writer.add_section(SECTION_HEADER, header);
    writer.add_section(SECTION_UNIVERSE, encode_universe(universe));
    writer.add_section(SECTION_DEP_INDEX, encode_dep_index(index));
    writer.add_section(SECTION_LINT, encode_lint(lint));
    writer.add_section(SECTION_NAMES, name_section);
    if let Some((json, _)) = figures {
        writer.add_section(SECTION_FIGURES, json.as_bytes().to_vec());
    }
    writer.to_bytes()
}

/// [`world_archive_bytes`] written to `path`; returns the bytes written.
pub fn save_world(
    path: impl AsRef<Path>,
    universe: &Universe,
    index: &DependencyIndex,
    lint: &LintIndex,
    names: &[SurveyName],
    top500: &[usize],
    figures: Option<(&str, usize)>,
) -> Result<u64, SnapshotError> {
    let bytes = world_archive_bytes(universe, index, lint, names, top500, figures);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a world from in-memory archive bytes with the classic copy
/// decode (everything owned, bytes dropped afterwards).
pub fn load_world_bytes(bytes: Vec<u8>) -> Result<LoadedWorld, SnapshotError> {
    let archive = Archive::from_bytes_copy(bytes)?;
    load_world_archive(&archive)
}

/// [`load_world_bytes`] with heap-view decoding: the bytes stay resident
/// once and the big flat tables become views borrowing them.
pub fn load_world_bytes_view(bytes: Vec<u8>) -> Result<LoadedWorld, SnapshotError> {
    let archive = Archive::from_bytes(bytes)?;
    load_world_archive(&archive)
}

/// Loads a world from a `.psa` file with the classic copy decode: one
/// bulk read, then per-section chunk decoding.
pub fn load_world(path: impl AsRef<Path>) -> Result<LoadedWorld, SnapshotError> {
    load_world_with(path, SnapshotBackend::Copy)
}

/// Loads a world from a `.psa` file through the chosen backend.
pub fn load_world_with(
    path: impl AsRef<Path>,
    backend: SnapshotBackend,
) -> Result<LoadedWorld, SnapshotError> {
    let archive = match backend {
        SnapshotBackend::Copy => Archive::read_from_path_copy(path)?,
        SnapshotBackend::Heap => Archive::read_from_path(path)?,
        SnapshotBackend::Paged {
            page_bytes,
            budget_bytes,
        } => Archive::open_paged(path, page_bytes, budget_bytes)?,
    };
    load_world_archive(&archive)
}

fn load_world_archive(archive: &Archive) -> Result<LoadedWorld, SnapshotError> {
    let header_sec = archive.section(SECTION_HEADER)?;
    let header_bytes = header_sec.bytes()?;
    let mut header = Dec::new_at(&header_bytes, "WORLDHDR", header_sec.base());
    let zone_count = header.u32()? as usize;
    let server_count = header.u32()? as usize;
    let name_count = header.u32()? as usize;
    let figures_rendered = header.u32()? as usize;
    let has_figures = match header.u8()? {
        0 => false,
        1 => true,
        other => return Err(header.malformed(format!("figure flag {other} is not 0/1"))),
    };
    header.finish()?;

    let universe = decode_universe(&archive.section(SECTION_UNIVERSE)?)?;
    if universe.zone_count() != zone_count || universe.server_count() != server_count {
        return Err(Dec::new(&[], "WORLDHDR").malformed(format!(
            "header declares {zone_count} zones / {server_count} servers, universe holds {} / {}",
            universe.zone_count(),
            universe.server_count()
        )));
    }
    let index = decode_dep_index(&archive.section(SECTION_DEP_INDEX)?, &universe)?;
    let lint = decode_lint(&archive.section(SECTION_LINT)?, &universe)?;

    let (names, top500) = decode_names(&archive.section(SECTION_NAMES)?, name_count)?;

    let figures_json = match archive.optional_section(SECTION_FIGURES) {
        Some(sec) => Some(
            String::from_utf8(sec.to_vec()?)
                .map_err(|e| Dec::new(&[], "FIGURES").malformed(format!("not UTF-8: {e}")))?,
        ),
        None => None,
    };
    if figures_json.is_some() != has_figures {
        return Err(Dec::new(&[], "WORLDHDR")
            .malformed("figure flag disagrees with FIGURES section presence".to_string()));
    }

    Ok(LoadedWorld {
        universe,
        index,
        lint,
        names,
        top500,
        figures_json,
        figures_rendered,
        archive_bytes: archive.len_bytes(),
        // Copy decodes own everything, so the store (and with it a
        // heap-resident archive) is dropped here — PR 9 behavior. View
        // decodes keep it alive for the views.
        store: match archive.mode() {
            DecodeMode::Copy => None,
            DecodeMode::View => Some(archive.store().clone()),
        },
    })
}

/// Decodes the `SURVNAME` section: the name table plus top-500 indices.
///
/// Copy mode materializes every record. View mode *validates* every
/// record (same checks, same bytes consumed — see
/// [`perils_core::snapshot::validate_name`]) and keeps only the record
/// boundaries, so names decode lazily from the store. Boundaries are
/// `u32`; a section past 4 GiB (no real archive is close) falls back to
/// the eager decode rather than truncating offsets.
fn decode_names(
    section: &Section,
    name_count: usize,
) -> Result<(NameTable, Vec<usize>), SnapshotError> {
    let payload = section.bytes()?;
    let payload = &payload[..];
    let mut dec = Dec::new_at(payload, "SURVNAME", section.base());
    let count = dec.u32()? as usize;
    if count != name_count {
        return Err(dec.malformed(format!(
            "header declares {name_count} names, section holds {count}"
        )));
    }
    let names = if section.mode() == DecodeMode::View && payload.len() <= u32::MAX as usize {
        let mut bounds = Vec::with_capacity(count + 1);
        for _ in 0..count {
            bounds.push((payload.len() - dec.remaining()) as u32);
            validate_name(&mut dec)?;
            validate_name(&mut dec)?;
            dec.u32()?;
        }
        bounds.push((payload.len() - dec.remaining()) as u32);
        NameTable::View(NameTableView {
            store: section.store().clone(),
            base: section.base(),
            bounds: Arc::new(bounds),
        })
    } else {
        let mut names = Vec::with_capacity(count.min(dec.remaining()));
        for _ in 0..count {
            names.push(decode_record(&mut dec)?);
        }
        NameTable::Owned(names)
    };
    let top500: Vec<usize> = dec.u32_vec()?.into_iter().map(|i| i as usize).collect();
    if let Some(&bad) = top500.iter().find(|&&i| i >= names.len()) {
        return Err(dec.malformed(format!("top500 index {bad} of {} names", names.len())));
    }
    dec.finish()?;
    Ok((names, top500))
}
