//! Generator parameters and presets.
//!
//! The paper's survey: 593,160 names, 196 TLDs, 166,771 discovered
//! nameservers. [`TopologyParams::paper`] reproduces that scale;
//! [`TopologyParams::default_scaled`] is a proportionally scaled universe
//! that runs the full figure pipeline in seconds on a laptop;
//! [`TopologyParams::tiny`] is for tests and doctests.

/// All generator knobs.
#[derive(Debug, Clone)]
pub struct TopologyParams {
    /// RNG seed: same seed ⇒ bit-identical universe and figures.
    pub seed: u64,
    /// Number of surveyed web-server names to produce.
    pub names: usize,
    /// Number of country-code TLDs (the paper saw 196 TLDs total; 12 are
    /// modeled gTLDs, the rest ccTLDs).
    pub cctlds: usize,
    /// Number of hosting providers / registrar DNS operators.
    pub providers: usize,
    /// Zipf exponent for provider popularity (hosting concentration).
    pub provider_zipf: f64,
    /// Number of university / volunteer operators (the pool that hosts
    /// ccTLD slaves and each other's zones).
    pub universities: usize,
    /// Number of second-level domains to generate (names are sampled from
    /// these; several names can share a domain).
    pub domains: usize,
    /// Zipf exponent for name popularity (directory crawl bias; also
    /// drives the alexa-style top-500 subset).
    pub popularity_zipf: f64,
    /// Probability that a domain is self-hosted (in-bailiwick, glued NS).
    pub p_self_hosted: f64,
    /// Probability that a domain is provider-hosted.
    pub p_provider_hosted: f64,
    /// Probability that a domain is university/volunteer-hosted (the
    /// remainder after self/provider is mixed off-site hosting).
    pub p_university_hosted: f64,
    /// Fraction of *operators* running a vulnerable BIND (versions are
    /// per-operator, so vulnerability correlates within NS sets).
    ///
    /// Calibrated against the ISC Feb-2004 matrix marginals: with the
    /// fixed vulnerable pockets the generator plants (two giant
    /// registrars, `.ws`, slow-patching country registries, clustered
    /// university webs), 0.162 lands the *server*-level vulnerable
    /// fraction at the paper's 16.3% at default and paper scale.
    pub vulnerable_operator_fraction: f64,
    /// Extra off-site secondary NS count for popular domains (the paper's
    /// availability-vs-security dilemma: popular sites spread wider).
    pub popular_extra_secondaries: usize,
    /// How many of the worst ccTLDs form dense volunteer webs (ua, by, sm,
    /// … in Figure 4).
    pub messy_cctlds: usize,
    /// Fraction of second-level domains whose delegations have decayed:
    /// their NS sets (partially or entirely) name hosts under vanished
    /// branches of the namespace, so [`perils_core::ZombieDelegationMetric`]
    /// has signal on synthetic worlds. Drawn from a dedicated RNG stream,
    /// so `0.0` (every preset's default) produces **exactly** the same
    /// world as before the knob existed — goldens are unaffected.
    pub stale_delegation_fraction: f64,
}

impl TopologyParams {
    /// The paper's scale (593k names). Minutes of CPU and gigabytes of
    /// memory; use [`TopologyParams::default_scaled`] for interactive work.
    pub fn paper(seed: u64) -> TopologyParams {
        TopologyParams {
            seed,
            names: 593_160,
            cctlds: 184,
            providers: 1200,
            provider_zipf: 1.3,
            universities: 900,
            domains: 250_000,
            popularity_zipf: 0.95,
            p_self_hosted: 0.25,
            p_provider_hosted: 0.52,
            p_university_hosted: 0.07,
            vulnerable_operator_fraction: 0.162,
            popular_extra_secondaries: 3,
            messy_cctlds: 20,
            stale_delegation_fraction: 0.0,
        }
    }

    /// The default preset: ~1/10 the paper's scale, preserving all
    /// proportions. Runs the full pipeline in seconds.
    pub fn default_scaled(seed: u64) -> TopologyParams {
        TopologyParams {
            seed,
            names: 60_000,
            cctlds: 184,
            providers: 320,
            provider_zipf: 1.3,
            universities: 260,
            domains: 26_000,
            popularity_zipf: 0.95,
            p_self_hosted: 0.25,
            p_provider_hosted: 0.52,
            p_university_hosted: 0.07,
            vulnerable_operator_fraction: 0.162,
            popular_extra_secondaries: 3,
            messy_cctlds: 20,
            stale_delegation_fraction: 0.0,
        }
    }

    /// A miniature universe for tests and doctests (hundreds of names).
    pub fn tiny(seed: u64) -> TopologyParams {
        TopologyParams {
            seed,
            names: 400,
            cctlds: 12,
            providers: 12,
            provider_zipf: 1.3,
            universities: 10,
            domains: 220,
            popularity_zipf: 0.95,
            p_self_hosted: 0.25,
            p_provider_hosted: 0.52,
            p_university_hosted: 0.07,
            vulnerable_operator_fraction: 0.162,
            popular_extra_secondaries: 2,
            messy_cctlds: 3,
            stale_delegation_fraction: 0.0,
        }
    }

    /// Sanity-checks the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on impossible combinations (probabilities exceeding 1,
    /// zero-sized pools).
    pub fn validate(&self) {
        let p = self.p_self_hosted + self.p_provider_hosted + self.p_university_hosted;
        assert!(p <= 1.0 + 1e-9, "hosting probabilities sum to {p} > 1");
        assert!(
            self.names > 0 && self.domains > 0,
            "names and domains must be positive"
        );
        assert!(
            self.providers > 0 && self.universities > 0,
            "operator pools must be non-empty"
        );
        assert!(
            self.cctlds >= self.messy_cctlds,
            "messy ccTLDs exceed ccTLD count"
        );
        assert!(
            (0.0..=1.0).contains(&self.vulnerable_operator_fraction),
            "vulnerable fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.stale_delegation_fraction),
            "stale-delegation fraction out of range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TopologyParams::paper(1).validate();
        TopologyParams::default_scaled(1).validate();
        TopologyParams::tiny(1).validate();
    }

    #[test]
    fn scaled_preserves_proportions() {
        let paper = TopologyParams::paper(1);
        let scaled = TopologyParams::default_scaled(1);
        let ratio = paper.names as f64 / scaled.names as f64;
        let domain_ratio = paper.domains as f64 / scaled.domains as f64;
        assert!(
            (ratio / domain_ratio - 1.0).abs() < 0.2,
            "domain scaling tracks name scaling"
        );
        assert_eq!(
            paper.vulnerable_operator_fraction,
            scaled.vulnerable_operator_fraction
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn invalid_probabilities_rejected() {
        let mut p = TopologyParams::tiny(1);
        p.p_self_hosted = 0.9;
        p.p_provider_hosted = 0.9;
        p.validate();
    }
}
