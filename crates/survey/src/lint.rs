//! The sharded lint runner and its output sinks.
//!
//! [`run_lint`] is the survey-side driver for [`perils_core::lint`]: it
//! builds the dependency index and shared [`LintIndex`] facts once, then
//! shards the three subject axes (zones, servers, surveyed names) over
//! the same crossbeam worker pool the metric engine uses. Each worker
//! runs every registered rule over its contiguous sub-ranges; shards are
//! merged rule-major in range order, so the diagnostic stream — and
//! every rendered byte — is invariant under thread count (the
//! `stream_equivalence` suite pins this).
//!
//! Three sinks serialize a [`LintReport`]: rustc-style text for humans,
//! a findings/rules/summary JSON document, and SARIF 2.1.0 for code
//! scanning UIs and CI annotation.

use perils_core::lint::{
    check_universe, Diagnostic, LintCtx, LintIndex, RuleRegistry, Severity, SeverityOverrides,
};
use perils_core::universe::{ServerId, Universe, ZoneId};
use perils_core::DependencyIndex;
use perils_dns::name::DnsName;
use perils_util::json::push_json_string;
use std::num::NonZeroUsize;

/// A rule's listing entry: its id, *effective* severity (defaults plus
/// any overrides), and description. Registry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMeta {
    /// Stable rule id.
    pub id: &'static str,
    /// Effective severity for this run.
    pub severity: Severity,
    /// One-line description.
    pub description: &'static str,
}

/// The outcome of a lint run: the merged diagnostics (severities
/// re-stamped by overrides, `allow`-level findings dropped) plus the
/// rule listing and subject counts the sinks summarize.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Every reported diagnostic, in rule-major, subject-range order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every registered rule with its effective severity.
    pub rules: Vec<RuleMeta>,
    /// Zones checked.
    pub zones: usize,
    /// Servers checked.
    pub servers: usize,
    /// Surveyed names checked.
    pub names: usize,
}

impl LintReport {
    /// Whether any reported finding is deny-level (the CI/exit-1 gate).
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders through the chosen sink.
    pub fn emit(&self, format: LintFormat) -> String {
        match format {
            LintFormat::Text => render_text(self),
            LintFormat::Json => render_json(self),
            LintFormat::Sarif => render_sarif(self),
        }
    }
}

/// Runs every rule in `registry` over `universe` and the surveyed
/// `names`, sharded over `threads` workers (engine default when `None`),
/// then applies `overrides`.
///
/// Output is deterministic and thread-count-invariant: workers own
/// contiguous sub-ranges of each subject axis and their per-rule shards
/// are concatenated in range order, exactly the metric engine's merge
/// discipline.
pub fn run_lint(
    universe: &Universe,
    names: &[DnsName],
    registry: &RuleRegistry,
    overrides: &SeverityOverrides,
    threads: Option<NonZeroUsize>,
) -> LintReport {
    let workers = thread_count(threads);
    let index = DependencyIndex::build_with_threads(universe, workers);
    let facts = LintIndex::build(universe);
    run_lint_with(
        universe, names, registry, overrides, threads, &index, &facts,
    )
}

/// [`run_lint`] over a **prebuilt** dependency index and lint facts —
/// the snapshot-loading path: a world reconstituted from a `.psa`
/// archive already carries both, so linting skips the two builds. The
/// index and facts must belong to `universe` (the snapshot decoder
/// validates this for loaded archives).
pub fn run_lint_with(
    universe: &Universe,
    names: &[DnsName],
    registry: &RuleRegistry,
    overrides: &SeverityOverrides,
    threads: Option<NonZeroUsize>,
    index: &DependencyIndex,
    facts: &LintIndex,
) -> LintReport {
    let workers = thread_count(threads);
    let zones: Vec<ZoneId> = universe.zone_ids().collect();
    let servers: Vec<ServerId> = universe.server_ids().collect();

    let diagnostics = if workers <= 1 {
        check_universe(universe, index, facts, registry, names)
    } else {
        sharded_check(
            universe, index, facts, registry, names, &zones, &servers, workers,
        )
    };

    finish_report(
        diagnostics,
        registry,
        overrides,
        zones.len(),
        servers.len(),
        names.len(),
    )
}

fn finish_report(
    diagnostics: Vec<Diagnostic>,
    registry: &RuleRegistry,
    overrides: &SeverityOverrides,
    zones: usize,
    servers: usize,
    names: usize,
) -> LintReport {
    let rules: Vec<RuleMeta> = registry
        .iter()
        .map(|rule| RuleMeta {
            id: rule.id(),
            severity: overrides.effective(rule),
            description: rule.describe(),
        })
        .collect();
    let effective_of = |id: &str| {
        rules
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.severity)
            .expect("diagnostic from an unregistered rule")
    };
    let diagnostics = diagnostics
        .into_iter()
        .filter_map(|mut d| {
            let severity = effective_of(d.rule);
            if severity == Severity::Allow {
                return None;
            }
            d.severity = severity;
            Some(d)
        })
        .collect();
    LintReport {
        diagnostics,
        rules,
        zones,
        servers,
        names,
    }
}

#[allow(clippy::too_many_arguments)]
fn sharded_check(
    universe: &Universe,
    index: &DependencyIndex,
    facts: &LintIndex,
    registry: &RuleRegistry,
    names: &[DnsName],
    zones: &[ZoneId],
    servers: &[ServerId],
    workers: usize,
) -> Vec<Diagnostic> {
    // Contiguous per-axis sub-ranges; a worker may own an empty slice of
    // one axis and a populated slice of another.
    let slice_of = |len: usize, w: usize| {
        let chunk = len.div_ceil(workers).max(1);
        let start = (w * chunk).min(len);
        start..(start + chunk).min(len)
    };
    // worker-major: worker → rule → diagnostics.
    let mut worker_shards: Vec<Vec<Vec<Diagnostic>>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let zone_range = slice_of(zones.len(), w);
            let server_range = slice_of(servers.len(), w);
            let name_range = slice_of(names.len(), w);
            handles.push(scope.spawn(move |_| {
                let ctx = LintCtx {
                    universe,
                    index,
                    facts,
                    zones: &zones[zone_range],
                    servers: &servers[server_range],
                    names: &names[name_range],
                };
                registry
                    .iter()
                    .map(|rule| rule.check(&ctx))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            worker_shards.push(handle.join().expect("lint shard panicked"));
        }
    })
    .expect("crossbeam scope");

    // Merge rule-major, workers in range order — the serial order.
    let mut out = Vec::new();
    for rule_idx in 0..registry.len() {
        for worker in &mut worker_shards {
            out.append(&mut worker[rule_idx]);
        }
    }
    out
}

fn thread_count(threads: Option<NonZeroUsize>) -> usize {
    threads
        .map(NonZeroUsize::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4)
        })
        .clamp(1, 16)
}

/// The serialization a lint sink writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintFormat {
    /// rustc-style human diagnostics.
    Text,
    /// One findings/rules/summary JSON document.
    Json,
    /// SARIF 2.1.0 for code-scanning consumers.
    Sarif,
}

impl LintFormat {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Option<LintFormat> {
        match s {
            "text" => Some(LintFormat::Text),
            "json" => Some(LintFormat::Json),
            "sarif" => Some(LintFormat::Sarif),
            _ => None,
        }
    }
}

/// Severity → rustc-style headline word.
fn text_label(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        _ => "warning",
    }
}

/// Severity → SARIF `level`.
fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Allow => "none",
        Severity::Warn => "warning",
        Severity::Deny => "error",
    }
}

/// rustc-style text: one headline + subject arrow + evidence notes per
/// finding, then a summary line.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}\n",
            text_label(d.severity),
            d.rule,
            d.message,
            d.subject
        ));
        for step in &d.evidence {
            out.push_str(&format!("  = note: {}: {}\n", step.at, step.note));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "lint: {} finding(s) ({} deny, {} warn) across {} zones, {} servers, {} names\n",
        report.diagnostics.len(),
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.zones,
        report.servers,
        report.names,
    ));
    out
}

/// The findings/rules/summary JSON document.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"rule\": ");
        push_json_string(&mut out, d.rule);
        out.push_str(", \"severity\": ");
        push_json_string(&mut out, d.severity.label());
        out.push_str(", \"subject\": {\"kind\": ");
        push_json_string(&mut out, d.subject.kind());
        out.push_str(", \"name\": ");
        push_json_string(&mut out, &d.subject.name().to_string());
        out.push_str("}, \"message\": ");
        push_json_string(&mut out, &d.message);
        out.push_str(", \"evidence\": [");
        for (j, step) in d.evidence.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"at\": ");
            push_json_string(&mut out, &step.at.to_string());
            out.push_str(", \"note\": ");
            push_json_string(&mut out, &step.note);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"rules\": [");
    for (i, rule) in report.rules.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"id\": ");
        push_json_string(&mut out, rule.id);
        out.push_str(", \"severity\": ");
        push_json_string(&mut out, rule.severity.label());
        out.push_str(", \"description\": ");
        push_json_string(&mut out, rule.description);
        out.push('}');
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"findings\": {}, \"deny\": {}, \"warn\": {}, \"zones\": {}, \"servers\": {}, \"names\": {}}}\n}}\n",
        report.diagnostics.len(),
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.zones,
        report.servers,
        report.names,
    ));
    out
}

/// SARIF 2.1.0: the registry as `tool.driver.rules` (every rule, in
/// registry order, with its effective level) and each finding as a
/// `result` whose subject is a logical location and whose evidence chain
/// becomes `relatedLocations`.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"perils-lint\",\n          \"rules\": [",
    );
    for (i, rule) in report.rules.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("            {\"id\": ");
        push_json_string(&mut out, rule.id);
        out.push_str(", \"shortDescription\": {\"text\": ");
        push_json_string(&mut out, rule.description);
        out.push_str("}, \"defaultConfiguration\": {\"level\": ");
        push_json_string(&mut out, sarif_level(rule.severity));
        out.push_str("}}");
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let rule_index = report
            .rules
            .iter()
            .position(|m| m.id == d.rule)
            .expect("diagnostic from an unregistered rule");
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("        {\"ruleId\": ");
        push_json_string(&mut out, d.rule);
        out.push_str(&format!(", \"ruleIndex\": {rule_index}, \"level\": "));
        push_json_string(&mut out, sarif_level(d.severity));
        out.push_str(", \"message\": {\"text\": ");
        push_json_string(&mut out, &d.message);
        out.push_str("}, \"locations\": [{\"logicalLocations\": [{\"fullyQualifiedName\": ");
        push_json_string(&mut out, &d.subject.to_string());
        out.push_str(", \"kind\": ");
        push_json_string(&mut out, d.subject.kind());
        out.push_str("}]}]");
        if !d.evidence.is_empty() {
            out.push_str(", \"relatedLocations\": [");
            for (j, step) in d.evidence.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"logicalLocations\": [{\"fullyQualifiedName\": ");
                push_json_string(&mut out, &step.at.to_string());
                out.push_str("}], \"message\": {\"text\": ");
                push_json_string(&mut out, &step.note);
                out.push_str("}}");
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}
