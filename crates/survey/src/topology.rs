//! The synthetic internet generator.
//!
//! Produces a [`SyntheticWorld`]: a full universe of zones, nameservers,
//! operators and surveyed names whose *generative mechanisms* mirror the
//! ones the paper identifies (see the crate docs). Everything is
//! deterministic in the seed.
//!
//! The same world plan can be materialized two ways:
//! * [`SyntheticWorld::universe`] — the analysis model (any scale);
//! * [`SyntheticWorld::build_scenario`] — a packet-level
//!   [`perils_authserver::Scenario`] with real zones, glue and server
//!   specs (small scales; used to cross-validate the structural analysis
//!   against wire-probed discovery).

use crate::params::TopologyParams;
use perils_authserver::deploy::ServerSpec;
use perils_authserver::scenarios::Scenario;
use perils_authserver::software::ServerSoftware;
use perils_core::universe::{Universe, UniverseEvent};
use perils_dns::name::{name, DnsName};
use perils_dns::rr::RData;
use perils_dns::zone::{Zone, ZoneRegistry};
use perils_netsim::{IpAllocator, Region};
use perils_util::dist::{AliasTable, ZipfTable};
use perils_util::Rng;
use perils_vulndb::VulnDb;
use std::collections::{BTreeMap, BTreeSet};

/// The twelve gTLDs of Figure 3, in the paper's plotted order.
pub const GTLDS: [&str; 12] = [
    "aero", "int", "name", "mil", "info", "edu", "biz", "gov", "org", "net", "com", "coop",
];

/// The fifteen worst ccTLDs of Figure 4, in the paper's plotted order,
/// followed by other real codes; synthetic codes fill any remainder.
pub const CCTLD_SEED: [&str; 30] = [
    "ua", "by", "sm", "mt", "my", "pl", "it", "mo", "am", "ie", "tp", "mk", "hk", "tw", "cn", "ws",
    "de", "uk", "fr", "jp", "nl", "ru", "br", "au", "ca", "se", "no", "fi", "es", "gr",
];

/// Number of communities in the volunteer backbone chain.
const BACKBONE_COMMUNITIES: usize = 10;

/// Vulnerable-operator version choices (all in the ISC Feb-2004 matrix).
const VULNERABLE_VERSIONS: [&str; 6] = ["8.2.4", "8.2.2-P5", "8.2.1", "8.3.1", "8.2.3", "9.2.1"];
/// Clean-operator version choices.
const CLEAN_VERSIONS: [&str; 6] = ["9.2.3", "9.2.2", "8.4.4", "8.3.7", "9.3.0", "4.9.11"];

/// One surveyed (crawled) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyName {
    /// The web-server name (e.g. `www.site123.com`).
    pub name: DnsName,
    /// Its TLD label.
    pub tld: DnsName,
    /// Popularity rank of its domain (0 = most popular).
    pub popularity_rank: usize,
}

/// A zone in the world plan.
#[derive(Debug, Clone)]
struct ZonePlan {
    origin: DnsName,
    ns: Vec<DnsName>,
    /// Host names needing A records in this zone (in-bailiwick servers and
    /// web hosts) when materializing a packet-level scenario.
    hosts: Vec<DnsName>,
}

/// A server in the world plan.
#[derive(Debug, Clone)]
struct ServerPlan {
    name: DnsName,
    version: String,
    region: u16,
    is_root: bool,
}

/// The generated world.
#[derive(Debug)]
pub struct SyntheticWorld {
    /// The analysis universe.
    pub universe: Universe,
    /// The surveyed names (deduplicated), in crawl order.
    pub names: Vec<SurveyName>,
    /// Indices into `names` of the 500 most popular (the alexa-style set).
    pub top500: Vec<usize>,
    /// ccTLD labels in "messiness" order, worst first (Figure 4's x-axis
    /// comes from the head of this list).
    pub cctld_order: Vec<String>,
    /// Region of each server, aligned with universe server ids.
    pub server_regions: Vec<Region>,
    zones: Vec<ZonePlan>,
    servers: Vec<ServerPlan>,
    roots: Vec<(DnsName, String)>,
}

/// The fully planned world before any materialization: compact zone and
/// server plans, the crawled name sample, and the popularity subset.
///
/// A plan is the streaming pipeline's source of truth for synthetic
/// worlds: [`SyntheticWorld::generate`] materializes it into an analysis
/// [`Universe`] all at once (the classic path), while
/// [`WorldPlan::into_stream_parts`] drains it as an incremental
/// [`UniverseEvent`] feed so the engine's universe builder — not the
/// generator — owns the only full-world allocation.
#[derive(Debug)]
pub(crate) struct WorldPlan {
    zones: Vec<ZonePlan>,
    servers: Vec<ServerPlan>,
    roots: Vec<(DnsName, String)>,
    names: Vec<SurveyName>,
    top500: Vec<usize>,
    cctld_order: Vec<String>,
}

impl WorldPlan {
    /// Decomposes the plan into the streaming parts: a lazy
    /// [`UniverseEvent`] iterator (every server with its version banner
    /// in plan order, then every zone with its NS set — the exact
    /// interning order of the materialized path, so ids are identical),
    /// the surveyed names, and the top-500 index subset. Each plan entry
    /// is dropped as its event is consumed.
    pub(crate) fn into_stream_parts(
        self,
    ) -> (
        impl Iterator<Item = UniverseEvent> + Send,
        Vec<SurveyName>,
        Vec<usize>,
    ) {
        let WorldPlan {
            zones,
            servers,
            names,
            top500,
            ..
        } = self;
        let events = servers
            .into_iter()
            .map(|server| UniverseEvent::Server {
                name: server.name,
                banner: Some(server.version),
                is_root: server.is_root,
            })
            .chain(zones.into_iter().map(|plan| UniverseEvent::Zone {
                origin: plan.origin,
                ns: plan.ns,
            }));
        (events, names, top500)
    }
}

/// Plans a synthetic world without materializing its universe
/// (deterministic in `params.seed`; same plan as
/// [`SyntheticWorld::generate`], which is this plus materialization).
pub(crate) fn plan_world(params: &TopologyParams) -> WorldPlan {
    params.validate();
    Generator::new(params).plan()
}

impl SyntheticWorld {
    /// Generates a world from `params` (deterministic in `params.seed`).
    pub fn generate(params: &TopologyParams) -> SyntheticWorld {
        SyntheticWorld::from_plan(plan_world(params))
    }

    /// Materializes a plan into the analysis universe (the interning
    /// order — servers with banners first, then zones — is the contract
    /// the streamed path reproduces event for event).
    fn from_plan(plan: WorldPlan) -> SyntheticWorld {
        let db = VulnDb::isc_feb_2004();
        let mut builder = Universe::builder();
        for server in &plan.servers {
            builder.ensure_server(
                &server.name,
                Some(server.version.clone()),
                &db,
                server.is_root,
            );
        }
        for zone in &plan.zones {
            builder.add_zone(&zone.origin, &zone.ns);
        }
        let universe = builder.finish();
        let server_regions: Vec<Region> = {
            // Align regions with universe ids via name lookup.
            let mut by_name: BTreeMap<DnsName, u16> = BTreeMap::new();
            for s in &plan.servers {
                by_name.insert(s.name.to_lowercase(), s.region);
            }
            universe
                .server_ids()
                .map(|sid| {
                    Region(
                        by_name
                            .get(&universe.server(sid).name)
                            .copied()
                            .unwrap_or(0),
                    )
                })
                .collect()
        };
        SyntheticWorld {
            universe,
            names: plan.names,
            top500: plan.top500,
            cctld_order: plan.cctld_order,
            server_regions,
            zones: plan.zones,
            servers: plan.servers,
            roots: plan.roots,
        }
    }

    /// Materializes a packet-level scenario: full zones with glue, server
    /// specs, root hints. Intended for small worlds (tests, examples);
    /// memory grows linearly with zones.
    pub fn build_scenario(&self) -> Scenario {
        let mut registry = ZoneRegistry::new();
        let mut alloc = IpAllocator::new();
        // Allocate addresses deterministically in server order.
        let mut addr_of: BTreeMap<DnsName, std::net::Ipv4Addr> = BTreeMap::new();
        for (i, server) in self.servers.iter().enumerate() {
            let region = Region(self.server_regions.get(i).map(|r| r.0).unwrap_or(0));
            addr_of.insert(server.name.clone(), alloc.alloc(region));
        }
        // Which zone is each host's home (deepest origin containing it)?
        let origins: BTreeSet<DnsName> = self.zones.iter().map(|z| z.origin.clone()).collect();
        let home_of =
            |host: &DnsName| -> Option<DnsName> { host.ancestors().find(|a| origins.contains(a)) };
        // Build zones.
        for plan in &self.zones {
            let primary = plan
                .ns
                .first()
                .cloned()
                .unwrap_or_else(|| name("a.root-servers.net"));
            let mut zone = Zone::synthetic(plan.origin.clone(), primary);
            for ns in &plan.ns {
                zone.add_rdata(plan.origin.clone(), RData::Ns(ns.clone()))
                    .expect("NS at apex is valid");
            }
            registry.insert(zone);
        }
        // Parent-side delegations + glue, plus host A records.
        let mut delegations: Vec<(DnsName, DnsName, Vec<DnsName>)> = Vec::new();
        for plan in &self.zones {
            if plan.origin.is_root() {
                continue;
            }
            let parent = plan
                .origin
                .parent()
                .map(|p| {
                    p.ancestors()
                        .find(|a| origins.contains(a))
                        .expect("root zone exists as ultimate ancestor")
                })
                .unwrap_or_else(DnsName::root);
            delegations.push((parent, plan.origin.clone(), plan.ns.clone()));
        }
        for (parent, child, ns) in delegations {
            let parent_zone = registry.get_mut(&parent).expect("parent zone exists");
            for host in &ns {
                parent_zone
                    .add_rdata(child.clone(), RData::Ns(host.clone()))
                    .expect("delegation NS is valid");
            }
            // Glue for in-bailiwick NS.
            for host in &ns {
                if host.is_proper_subdomain_of(&child) || host == &child {
                    if let Some(&addr) = addr_of.get(host) {
                        let _ = parent_zone.add_rdata(host.clone(), RData::A(addr));
                    }
                }
            }
        }
        // Host A records in their home zones.
        for plan in &self.zones {
            let zone = registry.get_mut(&plan.origin).expect("zone exists");
            for host in &plan.hosts {
                if home_of(host).as_ref() == Some(&plan.origin) {
                    let addr = addr_of
                        .get(host)
                        .copied()
                        .unwrap_or_else(|| "203.0.113.7".parse().expect("static"));
                    let _ = zone.add_rdata(host.clone(), RData::A(addr));
                }
            }
        }
        // Server specs: a server hosts every zone listing it at the apex.
        let mut zones_of: BTreeMap<DnsName, Vec<DnsName>> = BTreeMap::new();
        for plan in &self.zones {
            for ns in &plan.ns {
                zones_of
                    .entry(ns.clone())
                    .or_default()
                    .push(plan.origin.clone());
            }
        }
        let specs: Vec<ServerSpec> = self
            .servers
            .iter()
            .map(|server| ServerSpec {
                host_name: server.name.clone(),
                addr: addr_of[&server.name],
                software: ServerSoftware::bind(&server.version),
                zones: zones_of.remove(&server.name).unwrap_or_default(),
            })
            .collect();
        let roots: Vec<(DnsName, std::net::Ipv4Addr)> = self
            .roots
            .iter()
            .map(|(n, _)| (n.clone(), addr_of[n]))
            .collect();
        Scenario {
            registry,
            specs,
            roots,
        }
    }
}

/// Operator kinds, used for software assignment and Figure 9 grouping.
struct Generator<'p> {
    params: &'p TopologyParams,
    rng: Rng,
    zones: Vec<ZonePlan>,
    servers: Vec<ServerPlan>,
    server_names: BTreeSet<DnsName>,
    roots: Vec<(DnsName, String)>,
    /// (server names, region) per provider.
    provider_boxes: Vec<(Vec<DnsName>, u16)>,
    /// (server names, region) per university operator.
    university_boxes: Vec<(Vec<DnsName>, u16)>,
    /// Indices into `university_boxes` of the volunteer pool (dense
    /// community webs; hosts ccTLD and aero/int slaves).
    pool: Vec<usize>,
    cctld_order: Vec<String>,
}

impl<'p> Generator<'p> {
    fn new(params: &'p TopologyParams) -> Generator<'p> {
        Generator {
            params,
            rng: Rng::new(params.seed).fork(0x746f_706f),
            zones: Vec::new(),
            servers: Vec::new(),
            server_names: BTreeSet::new(),
            roots: Vec::new(),
            provider_boxes: Vec::new(),
            university_boxes: Vec::new(),
            pool: Vec::new(),
            cctld_order: Vec::new(),
        }
    }

    fn add_server(&mut self, host: &DnsName, version: &str, region: u16, is_root: bool) {
        if self.server_names.insert(host.clone()) {
            self.servers.push(ServerPlan {
                name: host.clone(),
                version: version.to_string(),
                region,
                is_root,
            });
        }
    }

    fn add_zone(&mut self, origin: DnsName, ns: Vec<DnsName>, hosts: Vec<DnsName>) {
        self.zones.push(ZonePlan { origin, ns, hosts });
    }

    fn pick_version(&mut self, forced_vulnerable: Option<bool>) -> &'static str {
        let vulnerable = match forced_vulnerable {
            Some(v) => v,
            None => self.rng.chance(self.params.vulnerable_operator_fraction),
        };
        if vulnerable {
            VULNERABLE_VERSIONS[self.rng.below_usize(VULNERABLE_VERSIONS.len())]
        } else {
            CLEAN_VERSIONS[self.rng.below_usize(CLEAN_VERSIONS.len())]
        }
    }

    fn plan(mut self) -> WorldPlan {
        self.build_root_and_gtlds();
        let cctld_labels = self.build_cctlds();
        self.build_providers();
        self.build_universities();
        self.wire_cctld_slaves(&cctld_labels);
        let (domain_zones, domain_tlds) = self.build_domains(&cctld_labels);
        let names = self.crawl_names(&domain_zones, &domain_tlds);
        self.decay_delegations(domain_zones.len());

        // Top-500 by popularity rank.
        let mut by_rank: Vec<usize> = (0..names.len()).collect();
        by_rank.sort_by_key(|&i| names[i].popularity_rank);
        let top500: Vec<usize> = by_rank.into_iter().take(500).collect();

        WorldPlan {
            zones: self.zones,
            servers: self.servers,
            roots: self.roots,
            names,
            top500,
            cctld_order: self.cctld_order,
        }
    }

    /// Root servers and the gTLD registry clusters.
    fn build_root_and_gtlds(&mut self) {
        // 13 root servers, trusted and excluded from TCBs.
        let mut root_ns = Vec::new();
        for letter in b'a'..=b'm' {
            let host = name(&format!("{}.root-servers.net", letter as char));
            self.add_server(&host, "9.2.3", 0, true);
            root_ns.push(host.clone());
            self.roots.push((host, "9.2.3".to_string()));
        }
        self.add_zone(DnsName::root(), root_ns.clone(), vec![]);
        self.add_zone(name("root-servers.net"), root_ns.clone(), root_ns.clone());

        // com/net/org cluster: 13 servers in gtld-servers.net (glued,
        // self-contained) + a support zone nstld.com mirroring Figure 1.
        let mut gtld_ns = Vec::new();
        for letter in b'a'..=b'm' {
            let host = name(&format!("{}.gtld-servers.net", letter as char));
            self.add_server(&host, "9.2.3", 0, false);
            gtld_ns.push(host);
        }
        let mut nstld_ns = Vec::new();
        for letter in b'a'..=b'g' {
            let host = name(&format!("{}2.nstld.com", letter as char));
            self.add_server(&host, "9.2.3", 0, false);
            nstld_ns.push(host);
        }
        self.add_zone(name("gtld-servers.net"), nstld_ns.clone(), vec![]);
        self.add_zone(name("nstld.com"), nstld_ns.clone(), nstld_ns.clone());
        for tld in ["com", "net", "org"] {
            self.add_zone(name(tld), gtld_ns.clone(), vec![]);
        }

        // Dedicated small clusters for edu/gov/mil/biz/info/name/coop and
        // the volunteer-run aero/int (their pool slaves are wired once the
        // universities exist).
        for (tld, count) in [
            ("edu", 3),
            ("gov", 3),
            ("mil", 3),
            ("biz", 4),
            ("info", 4),
            ("name", 4),
            ("coop", 2),
            ("aero", 2),
            ("int", 2),
        ] {
            let mut ns = Vec::new();
            for i in 1..=count {
                let host = name(&format!("ns{i}.{tld}-servers.net"));
                self.add_server(&host, "9.2.3", 0, false);
                ns.push(host.clone());
            }
            self.add_zone(name(&format!("{tld}-servers.net")), ns.clone(), ns.clone());
            self.add_zone(name(tld), ns, vec![]);
        }
    }

    /// ccTLD labels and their in-country registry servers.
    fn build_cctlds(&mut self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for code in CCTLD_SEED.iter().take(self.params.cctlds) {
            labels.push((*code).to_string());
        }
        let mut n = 0usize;
        while labels.len() < self.params.cctlds {
            let a = (b'a' + (n / 26) as u8 % 26) as char;
            let b = (b'a' + (n % 26) as u8) as char;
            let code = format!("{a}{b}x");
            if !labels.contains(&code) && !GTLDS.contains(&code.as_str()) {
                labels.push(code);
            }
            n += 1;
        }
        self.cctld_order = labels.clone();
        for (i, code) in labels.iter().enumerate() {
            let region = (i % 200 + 10) as u16;
            // One or two in-country registry boxes under nic.<cc>.
            let mut ns = Vec::new();
            // .ws runs old BIND everywhere (the paper: some names have
            // their *entire* TCB vulnerable; they belong to .ws). Other
            // country registries patch more slowly than gTLD registries.
            let forced = if code == "ws" {
                Some(true)
            } else {
                Some(
                    self.rng
                        .chance(0.4 * self.params.vulnerable_operator_fraction),
                )
            };
            let version = self.pick_version(forced).to_string();
            for k in 1..=2 {
                let host = name(&format!("ns{k}.nic.{code}"));
                self.add_server(&host, &version, region, false);
                ns.push(host);
            }
            self.add_zone(name(&format!("nic.{code}")), ns.clone(), ns.clone());
            self.add_zone(name(code), ns, vec![]);
        }
        labels
    }

    /// Hosting providers: Zipf-sized NS fleets, self-hosted with glue.
    ///
    /// Two of the giant registrar operators run vulnerable BIND: the
    /// paper's "about 12 of the 125 high profile nameservers have
    /// well-known loopholes", and the lever that makes 30% of names
    /// completely hijackable from only ~17% vulnerable servers.
    fn build_providers(&mut self) {
        for i in 0..self.params.providers {
            let region = (self.rng.below(200) + 10) as u16;
            let domain = name(&format!("dns{i}.net"));
            let boxes = match i {
                0..=2 => 4,
                3..=15 => 3,
                _ => 2,
            };
            let forced = match i {
                0 | 2 => Some(true),      // vulnerable giant registrars
                1 | 3..=9 => Some(false), // professionally run
                10..=15 => Some(self.rng.chance(0.3)),
                _ => None,
            };
            let version = self.pick_version(forced).to_string();
            let mut ns = Vec::new();
            for k in 1..=boxes {
                let host = domain.prepend(&format!("ns{k}")).expect("short label");
                self.add_server(&host, &version, region, false);
                ns.push(host);
            }
            self.add_zone(domain, ns.clone(), ns);
            self.provider_boxes
                .push((self.zones.last().expect("just added").ns.clone(), region));
        }
    }

    /// Universities, non-profits and volunteer ISPs.
    ///
    /// The first operators form the **volunteer backbone**: a chain of
    /// communities where community `k` slaves its zones at community
    /// `k-1`. Dependency therefore flows downward: pulling one box of
    /// community `k` pulls an exponentially growing slice of communities
    /// `k-1 … 0`. TLD registries slave at different depths (aero/int at
    /// the deep end, gov/org at the shallow end), which is what produces
    /// Figure 3's ordering and Figure 4's ccTLD slope. The remaining
    /// operators are ordinary universities with sparse mutual-secondary
    /// webs (the cornell/rochester pattern of Figure 1).
    fn build_universities(&mut self) {
        let uni_count = self.params.universities;
        let backbone_ops = (uni_count / 3).min(80);
        // Vulnerability is correlated per community/cluster: an
        // institution's peers run the same distributions and upgrade
        // cycles, so a web is either largely clean or riddled. This is
        // what lets 45% of names see a vulnerable dependency while the
        // per-name count stays clustered (Figure 5's mean of ~4).
        let cluster = 12usize;
        let cluster_count = uni_count.div_ceil(cluster);
        let cluster_vulnerable: Vec<bool> =
            (0..cluster_count).map(|_| self.rng.chance(0.18)).collect();
        // First create every operator's own boxes.
        for i in 0..uni_count {
            let region = (self.rng.below(200) + 10) as u16;
            // Backbone mixes .edu, .org and volunteer ISPs in .net (the
            // paper's §3.3: universities, non-profits "and so forth");
            // ordinary operators are .edu/.org two-to-one.
            let domain = if i < backbone_ops {
                match i % 3 {
                    0 => name(&format!("uni{i}.edu")),
                    1 => name(&format!("npo{i}.org")),
                    _ => name(&format!("isp{i}.net")),
                }
            } else if i % 3 == 2 {
                name(&format!("npo{i}.org"))
            } else {
                name(&format!("uni{i}.edu"))
            };
            let rate = if cluster_vulnerable[i / cluster] {
                0.45
            } else {
                0.02
            };
            let forced = Some(self.rng.chance(rate));
            let version = self.pick_version(forced).to_string();
            let mut ns = Vec::new();
            for k in 1..=2 {
                let host = domain.prepend(&format!("ns{k}")).expect("short label");
                self.add_server(&host, &version, region, false);
                ns.push(host);
            }
            self.university_boxes.push((ns, region));
            // Zone added after cross-wiring below.
            self.add_zone(domain, Vec::new(), Vec::new());
        }
        self.pool = (0..backbone_ops).collect();
        let communities = BACKBONE_COMMUNITIES;
        let per_community = backbone_ops.div_ceil(communities).max(1);
        let zone_base = self.zones.len() - uni_count;
        for i in 0..uni_count {
            let mut ns = self.university_boxes[i].0.clone();
            if i < backbone_ops {
                let community = i / per_community;
                // Two secondaries from the community below (or peers, at
                // the bottom), plus one at the community-0 hub: the
                // handful of famous volunteer operators everyone slaves
                // at. Those hub boxes end up in a tenth of all closures —
                // the paper's "most valuable nameservers".
                let lower = if community == 0 { 0 } else { community - 1 };
                let lo = lower * per_community;
                let hi = ((lower + 1) * per_community).min(backbone_ops);
                for _ in 0..2 {
                    let other = lo + self.rng.below_usize(hi - lo);
                    if other != i {
                        let boxes = &self.university_boxes[other].0;
                        let pick = boxes[self.rng.below_usize(boxes.len())].clone();
                        if !ns.contains(&pick) {
                            ns.push(pick);
                        }
                    }
                }
                if community > 0 {
                    let hub = self.rng.below_usize(per_community.min(backbone_ops));
                    let boxes = &self.university_boxes[hub].0;
                    let pick = boxes[self.rng.below_usize(boxes.len())].clone();
                    if !ns.contains(&pick) {
                        ns.push(pick);
                    }
                }
            } else {
                // Ordinary university: web among ordinary peers (the
                // cornell/rochester/wisc/umich pattern of Figure 1). The
                // expected out-degree sits just below the percolation
                // threshold, giving heavy-tailed but finite webs.
                for p_link in [0.7, 0.2] {
                    if self.rng.chance(p_link) {
                        let other = backbone_ops + self.rng.below_usize(uni_count - backbone_ops);
                        if other != i {
                            let boxes = &self.university_boxes[other].0;
                            let pick = boxes[self.rng.below_usize(boxes.len())].clone();
                            if !ns.contains(&pick) {
                                ns.push(pick);
                            }
                        }
                    }
                }
            }
            let hosts = self.university_boxes[i].0.clone();
            let plan = &mut self.zones[zone_base + i];
            plan.ns = ns;
            plan.hosts = hosts;
        }
    }

    /// Picks an ordinary (non-backbone) university index.
    fn nonpool_university(&mut self) -> usize {
        let pool_size = self.pool.len();
        let total = self.university_boxes.len();
        if total > pool_size {
            pool_size + self.rng.below_usize(total - pool_size)
        } else {
            self.rng.below_usize(total)
        }
    }

    /// Picks one box of a backbone operator at community `depth`
    /// (0 = shallow, `BACKBONE_COMMUNITIES - 1` = deep; clamped).
    fn backbone_box(&mut self, depth: usize) -> DnsName {
        let backbone_ops = self.pool.len();
        let per_community = backbone_ops.div_ceil(BACKBONE_COMMUNITIES).max(1);
        let depth = depth.min(BACKBONE_COMMUNITIES - 1);
        let lo = (depth * per_community).min(backbone_ops.saturating_sub(1));
        let hi = ((depth + 1) * per_community).min(backbone_ops);
        let idx = lo + self.rng.below_usize((hi - lo).max(1));
        let boxes = &self.university_boxes[idx].0;
        boxes[self.rng.below_usize(boxes.len())].clone()
    }

    /// Wires messy ccTLDs and the volunteer-involved gTLDs onto the
    /// backbone, at depths shaped to the Figure 3/4 orderings.
    fn wire_cctld_slaves(&mut self, cctld_labels: &[String]) {
        let deep = BACKBONE_COMMUNITIES - 1;
        let mut slave_sets: Vec<(DnsName, Vec<DnsName>)> = Vec::new();
        for (i, code) in cctld_labels.iter().enumerate() {
            let (slaves, depth) = if i < self.params.messy_cctlds {
                // ua slaves deepest; the 15th-worst noticeably shallower.
                let t = i as f64 / self.params.messy_cctlds.max(1) as f64;
                let slaves = (10.0 - 6.0 * t).round() as usize;
                let depth = deep.saturating_sub((t * 6.0).round() as usize);
                (slaves, depth)
            } else if self.rng.chance(0.15) {
                (1, 0)
            } else {
                (0, 0)
            };
            let mut extra = Vec::new();
            for _ in 0..slaves {
                let pick = self.backbone_box(depth);
                if !extra.contains(&pick) {
                    extra.push(pick);
                }
            }
            slave_sets.push((name(code), extra));
        }
        // Volunteer involvement per gTLD, deep-to-shallow along the
        // Figure 3 ordering: aero and int run almost entirely on donated
        // infrastructure; gov/org barely touch it.
        // edu and org are *not* wired here: like com/net they ran on
        // professional registry infrastructure in 2004, and wiring them
        // would transitively poison every closure containing any
        // .edu-named server (the universities' own chains pass through
        // the edu TLD).
        for (tld, slaves, depth) in [
            ("aero", 8, deep),
            ("int", 6, deep - 1),
            ("name", 4, deep - 2),
            ("mil", 3, deep - 3),
            ("info", 2, deep - 5),
            ("biz", 1, 2),
            ("gov", 1, 1),
        ] {
            let mut extra = Vec::new();
            for _ in 0..slaves {
                let pick = self.backbone_box(depth);
                if !extra.contains(&pick) {
                    extra.push(pick);
                }
            }
            slave_sets.push((name(tld), extra));
        }
        for (origin, extra) in slave_sets {
            if let Some(plan) = self.zones.iter_mut().find(|z| z.origin == origin) {
                for host in extra {
                    if !plan.ns.contains(&host) {
                        plan.ns.push(host);
                    }
                }
            }
        }
    }

    /// Second-level domains with their hosting styles. Returns the zone
    /// origins and TLD of each domain.
    fn build_domains(&mut self, cctld_labels: &[String]) -> (Vec<DnsName>, Vec<DnsName>) {
        // TLD mix: com-heavy, as in the DMOZ/Yahoo crawl.
        let gtld_weights: Vec<(DnsName, f64)> = vec![
            (name("com"), 0.46),
            (name("net"), 0.09),
            (name("org"), 0.09),
            (name("edu"), 0.035),
            (name("gov"), 0.012),
            (name("mil"), 0.004),
            (name("biz"), 0.013),
            (name("info"), 0.022),
            (name("name"), 0.003),
            (name("aero"), 0.001),
            (name("int"), 0.001),
            (name("coop"), 0.001),
        ];
        let gtld_total: f64 = gtld_weights.iter().map(|(_, w)| w).sum();
        let cctld_total = 1.0 - gtld_total;
        // ccTLD popularity: Zipf over a shuffled order (the messy ones are
        // not necessarily the populous ones).
        let mut cc_pop: Vec<f64> = Vec::with_capacity(cctld_labels.len());
        let mut harmonic = 0.0;
        for k in 1..=cctld_labels.len() {
            harmonic += 1.0 / k as f64;
        }
        let mut cc_order: Vec<usize> = (0..cctld_labels.len()).collect();
        self.rng.shuffle(&mut cc_order);
        let mut cc_rank = vec![0usize; cctld_labels.len()];
        for (rank, &idx) in cc_order.iter().enumerate() {
            cc_rank[idx] = rank;
        }
        for &rank in &cc_rank {
            cc_pop.push(cctld_total / harmonic / (rank + 1) as f64);
        }
        let mut weights: Vec<f64> = gtld_weights.iter().map(|(_, w)| *w).collect();
        weights.extend(cc_pop);
        let tld_table = AliasTable::new(&weights);
        let tld_names: Vec<DnsName> = gtld_weights
            .iter()
            .map(|(n, _)| n.clone())
            .chain(cctld_labels.iter().map(|c| name(c)))
            .collect();

        // Hosting style table.
        let p_mixed = (1.0
            - self.params.p_self_hosted
            - self.params.p_provider_hosted
            - self.params.p_university_hosted)
            .max(0.0);
        let style_table = AliasTable::new(&[
            self.params.p_self_hosted,
            self.params.p_provider_hosted,
            self.params.p_university_hosted,
            p_mixed,
        ]);
        let mut provider_pick = ZipfTable::new(self.params.providers, self.params.provider_zipf);

        let mut domain_zones = Vec::with_capacity(self.params.domains);
        let mut domain_tlds = Vec::with_capacity(self.params.domains);
        for j in 0..self.params.domains {
            let tld_idx = tld_table.sample(&mut self.rng);
            let tld = tld_names[tld_idx].clone();
            let origin = tld.prepend(&format!("site{j}")).expect("short label");
            let style = match tld.to_string().as_str() {
                // University domains are university-hosted by definition;
                // military and government sites self-host.
                "edu" => 2,
                "mil" | "gov" => 0,
                // A quarter of .org domains sit on non-profit volunteer
                // infrastructure (lifts the org bar above net/com as in
                // Figure 3).
                "org" if self.rng.chance(0.25) => 2,
                _ => style_table.sample(&mut self.rng),
            };
            let popular = j < 600; // low domain index = popular (crawl rank)
            let mut ns: Vec<DnsName> = Vec::new();
            let mut hosts: Vec<DnsName> = Vec::new();
            match style {
                0 => {
                    // Self-hosted, glued.
                    let version = self.pick_version(None).to_string();
                    let count = if popular || self.rng.chance(0.5) {
                        3
                    } else {
                        2
                    };
                    for k in 1..=count {
                        let host = origin.prepend(&format!("ns{k}")).expect("short label");
                        self.add_server(&host, &version, 0, false);
                        ns.push(host.clone());
                        hosts.push(host);
                    }
                }
                1 => {
                    // Provider-hosted; ~30% keep one in-domain box as a
                    // hidden primary.
                    let p = provider_pick.sample(&mut self.rng);
                    let boxes = self.provider_boxes[p].0.clone();
                    let take = boxes.len().min(if popular { 3 } else { 2 });
                    ns.extend(boxes.into_iter().take(take));
                    if self.rng.chance(0.15) {
                        let version = self.pick_version(None).to_string();
                        let host = origin.prepend("ns1").expect("short label");
                        self.add_server(&host, &version, 0, false);
                        ns.push(host.clone());
                        hosts.push(host);
                    }
                }
                2 => {
                    // University/volunteer-hosted: one departmental box
                    // plus an ordinary (non-pool) university's servers.
                    let version = self.pick_version(None).to_string();
                    let host = origin.prepend("ns1").expect("short label");
                    self.add_server(&host, &version, 0, false);
                    ns.push(host.clone());
                    hosts.push(host);
                    let uni = self.nonpool_university();
                    ns.extend(self.university_boxes[uni].0.iter().cloned());
                }
                _ => {
                    // Mixed: two own boxes plus an off-site secondary —
                    // usually an ordinary university (the
                    // cornell/rochester pattern), sometimes a shallow
                    // backbone volunteer.
                    let version = self.pick_version(None).to_string();
                    for k in 1..=2 {
                        let host = origin.prepend(&format!("ns{k}")).expect("short label");
                        self.add_server(&host, &version, 0, false);
                        ns.push(host.clone());
                        hosts.push(host);
                    }
                    if self.rng.chance(0.25) {
                        let depth = self.rng.below_usize(2);
                        let pick = self.backbone_box(depth);
                        if !ns.contains(&pick) {
                            ns.push(pick);
                        }
                    } else {
                        let uni = self.nonpool_university();
                        let boxes = &self.university_boxes[uni].0;
                        ns.push(boxes[self.rng.below_usize(boxes.len())].clone());
                    }
                }
            }
            // Popular domains add further off-site secondaries: the
            // availability-vs-security trade the paper highlights (top-500
            // names have *larger* TCBs). Half are additional in-domain
            // boxes at other sites; half are ordinary-university webs.
            if popular {
                for extra in 0..self.params.popular_extra_secondaries {
                    if extra <= 1 {
                        let uni = self.nonpool_university();
                        let boxes = self.university_boxes[uni].0.clone();
                        for pick in boxes {
                            if !ns.contains(&pick) {
                                ns.push(pick);
                            }
                        }
                    } else {
                        let version = self.pick_version(None).to_string();
                        let host = origin
                            .prepend(&format!("ns{}", 4 + extra))
                            .expect("short label");
                        self.add_server(&host, &version, 0, false);
                        if !ns.contains(&host) {
                            ns.push(host.clone());
                            hosts.push(host);
                        }
                    }
                }
            }
            // The surveyed web host lives in this zone.
            hosts.push(origin.prepend("www").expect("short label"));
            self.add_zone(origin.clone(), ns, hosts);
            domain_zones.push(origin);
            domain_tlds.push(tld);
        }
        (domain_zones, domain_tlds)
    }

    /// Applies the stale-delegation knob
    /// ([`TopologyParams::stale_delegation_fraction`]): that fraction of
    /// second-level domains decays. Half of the decayed domains lose their
    /// **entire** NS set to hosts under a vanished `.zz` branch — a zombie
    /// delegation whose names become orphaned — and the rest keep their
    /// live servers but gain one dead secondary (dead-in-TCB signal
    /// without orphaning), mirroring how real delegations rot one expired
    /// registration at a time.
    ///
    /// Decay draws from a dedicated forked RNG stream and runs after
    /// everything else is planned, so a fraction of zero leaves the world
    /// bit-identical to a build without the knob.
    fn decay_delegations(&mut self, domain_count: usize) {
        let fraction = self.params.stale_delegation_fraction;
        if fraction <= 0.0 {
            return;
        }
        let mut rng = Rng::new(self.params.seed).fork(0x7a6f_6d62); // "zomb"
                                                                    // Domain zones are the last `domain_count` plans, in build order.
        let base = self.zones.len() - domain_count;
        for j in 0..domain_count {
            if !rng.chance(fraction) {
                continue;
            }
            let plan = &mut self.zones[base + j];
            // `.zz` is reserved: never a generated ccTLD (seed codes are
            // two known letters, synthetic codes end in `x`), so nothing
            // in the universe can supply an address under it.
            if rng.chance(0.5) {
                let count = plan.ns.len().clamp(1, 2);
                plan.ns = (1..=count)
                    .map(|k| name(&format!("ns{k}.ghost{j}.zz")))
                    .collect();
            } else {
                plan.ns.push(name(&format!("ns9.ghost{j}.zz")));
            }
        }
    }

    /// Samples the crawled directory: Zipf-popular domains, one or more
    /// host names each, deduplicated.
    fn crawl_names(
        &mut self,
        domain_zones: &[DnsName],
        domain_tlds: &[DnsName],
    ) -> Vec<SurveyName> {
        let mut zipf = ZipfTable::new(domain_zones.len(), self.params.popularity_zipf);
        let mut seen: BTreeSet<DnsName> = BTreeSet::new();
        let mut names: Vec<SurveyName> = Vec::new();
        let hosts = [
            "www", "web", "mail", "news", "shop", "ftp", "w3", "portal", "images", "search",
        ];
        let mut attempts = 0usize;
        while names.len() < self.params.names && attempts < self.params.names * 20 {
            attempts += 1;
            let rank = zipf.sample(&mut self.rng);
            let domain = &domain_zones[rank];
            // Mostly www; a directory crawl also surfaces other hosts of
            // popular domains.
            let start = if names.len().is_multiple_of(4) {
                self.rng.below_usize(hosts.len())
            } else {
                0
            };
            for step in 0..hosts.len() {
                let host_label = hosts[(start + step) % hosts.len()];
                let full = domain.prepend(host_label).expect("short label");
                if seen.insert(full.clone()) {
                    names.push(SurveyName {
                        name: full,
                        tld: domain_tlds[rank].clone(),
                        popularity_rank: rank,
                    });
                    break;
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TopologyParams;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticWorld::generate(&TopologyParams::tiny(7));
        let b = SyntheticWorld::generate(&TopologyParams::tiny(7));
        assert_eq!(a.universe.server_count(), b.universe.server_count());
        assert_eq!(a.universe.zone_count(), b.universe.zone_count());
        assert_eq!(a.names.len(), b.names.len());
        for (x, y) in a.names.iter().zip(&b.names) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticWorld::generate(&TopologyParams::tiny(1));
        let b = SyntheticWorld::generate(&TopologyParams::tiny(2));
        let same = a
            .names
            .iter()
            .zip(&b.names)
            .filter(|(x, y)| x.name == y.name)
            .count();
        assert!(same < a.names.len(), "seeds must matter");
    }

    #[test]
    fn structure_is_complete() {
        let world = SyntheticWorld::generate(&TopologyParams::tiny(3));
        assert!(world.universe.zone_count() > 200);
        assert!(world.universe.server_count() > 100);
        assert!(!world.names.is_empty());
        // Every surveyed name has a zone in the universe.
        for survey_name in &world.names {
            assert!(
                world.universe.zone_of(&survey_name.name).is_some(),
                "{} has no enclosing zone",
                survey_name.name
            );
        }
        // Root servers are flagged.
        let root = world
            .universe
            .server_id(&name("a.root-servers.net"))
            .unwrap();
        assert!(world.universe.server(root).is_root);
        // Regions aligned with servers.
        assert_eq!(world.server_regions.len(), world.universe.server_count());
    }

    #[test]
    fn vulnerable_fraction_in_band() {
        let world = SyntheticWorld::generate(&TopologyParams::tiny(5));
        let f = world.universe.vulnerable_fraction();
        assert!((0.05..0.45).contains(&f), "vulnerable fraction {f}");
    }

    #[test]
    fn ws_cctld_is_all_vulnerable() {
        let mut params = TopologyParams::tiny(1);
        params.cctlds = 16; // include "ws" (index 15 of the seed list)
        let world = SyntheticWorld::generate(&params);
        let ws = world.universe.zone_id(&name("ws")).expect("ws exists");
        let zone = world.universe.zone(ws);
        let nic_servers: Vec<_> = zone
            .ns
            .iter()
            .filter(|&&s| {
                world
                    .universe
                    .server(s)
                    .name
                    .is_subdomain_of(&name("nic.ws"))
            })
            .collect();
        assert!(!nic_servers.is_empty());
        for &sid in nic_servers {
            assert!(
                world.universe.server(sid).vulnerable,
                "nic.ws boxes run old BIND"
            );
        }
    }

    #[test]
    fn stale_delegation_knob_decays_domains() {
        use perils_core::ZombieIndex;
        let clean = SyntheticWorld::generate(&TopologyParams::tiny(9));
        let mut params = TopologyParams::tiny(9);
        params.stale_delegation_fraction = 0.3;
        let decayed = SyntheticWorld::generate(&params);
        let clean_index = ZombieIndex::build(&clean.universe);
        let decayed_index = ZombieIndex::build(&decayed.universe);
        assert_eq!(
            clean_index.zombie_zones(),
            0,
            "knob off: synthetic worlds have no zombie delegations"
        );
        assert!(
            decayed_index.zombie_zones() > 0,
            "full decay plants zombies"
        );
        assert!(
            decayed_index.dead_servers() > decayed_index.zombie_zones(),
            "partial decay plants extra dead secondaries"
        );
        // Decay perturbs delegations only — the crawl sample is unchanged.
        assert_eq!(clean.names.len(), decayed.names.len());
        for (a, b) in clean.names.iter().zip(&decayed.names) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn top500_is_popularity_ordered() {
        let world = SyntheticWorld::generate(&TopologyParams::tiny(4));
        let ranks: Vec<usize> = world
            .top500
            .iter()
            .map(|&i| world.names[i].popularity_rank)
            .collect();
        for w in ranks.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn tiny_world_builds_packet_scenario() {
        let world = SyntheticWorld::generate(&TopologyParams::tiny(6));
        let scenario = world.build_scenario();
        assert!(!scenario.roots.is_empty());
        assert!(scenario.specs.len() > 50);
        // Every root hint has an address and a spec.
        for (host, addr) in &scenario.roots {
            assert!(scenario
                .specs
                .iter()
                .any(|s| &s.host_name == host && &s.addr == addr));
        }
    }
}
