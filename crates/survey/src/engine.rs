//! The pluggable analysis engine: one sharded per-name measurement pass,
//! any world, any set of [`NameMetric`]s.
//!
//! The seed hardwired six measurements into the survey driver's thread
//! loop; this module owns the loop once. An [`Engine`] holds registered
//! metrics, a [`WorldSource`] supplies the delegation universe plus the
//! surveyed names — synthetic topologies, hand-built packet scenarios
//! (fbi.gov, Figure 1) and wire-probed worlds all load through the same
//! trait — and [`Engine::run`] shards the name loop across threads exactly
//! as the seed driver did: each worker owns a contiguous name range,
//! computes every name's dependency closure **once** — as a borrowed
//! [`perils_core::ClosureView`] over the memoized sub-closure index, with
//! per-worker scratch, so the pass allocates no per-name closure sets —
//! feeds it to every metric's shard accumulator, and the merge
//! concatenates shards in range order, so results are deterministic and
//! invariant in the thread count.
//!
//! [`Engine::run_batched`] is the same pass streamed in bounded batches:
//! shards live only for one batch, each batch merges immediately, and the
//! merged columns append across batches, so peak accumulator memory is set
//! by the batch size rather than the name count. `run` is the
//! single-batch special case and produces byte-identical reports.
//!
//! The output is a columnar [`SurveyReport`] keyed by metric column id,
//! with typed accessors for the classic figures' columns.

use crate::params::TopologyParams;
use crate::scenario::{report_events, scenario_events};
use crate::topology::{plan_world, SurveyName, SyntheticWorld};
use perils_authserver::scenarios::Scenario;
use perils_core::closure::DependencyIndex;
use perils_core::hijack::min_hijack_exact;
use perils_core::metric::{
    columns, ColumnKind, MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState,
};
use perils_core::universe::{Universe, UniverseEvent};
use perils_core::value::ValueIndex;
use perils_core::{DnssecCoverageMetric, MinCutMetric, MisconfigMetric, TcbMetric, ValueMetric};
use perils_dns::name::DnsName;
use perils_resolver::DependencyReport;
use perils_vulndb::VulnDb;
use std::collections::BTreeMap;
use std::num::NonZeroUsize;

/// A delegation universe plus the names surveyed over it — the common
/// denominator every [`WorldSource`] produces and the engine consumes.
#[derive(Debug)]
pub struct AnalysisWorld {
    /// The analysis universe.
    pub universe: Universe,
    /// The surveyed names, in survey order.
    pub names: Vec<SurveyName>,
    /// Indices into `names` of the most popular subset (may be empty for
    /// scenario worlds, where popularity is meaningless).
    pub top500: Vec<usize>,
}

impl AnalysisWorld {
    /// Wraps a universe and plain target names (rank = survey order).
    pub fn from_targets(universe: Universe, targets: Vec<DnsName>) -> AnalysisWorld {
        AnalysisWorld {
            universe,
            names: survey_names_of(targets).collect(),
            top500: Vec::new(),
        }
    }
}

/// Plain target names as [`SurveyName`]s (rank = survey order).
fn survey_names_of(targets: Vec<DnsName>) -> impl Iterator<Item = SurveyName> + Send {
    targets.into_iter().enumerate().map(|(i, name)| SurveyName {
        tld: name.tld().unwrap_or_else(DnsName::root),
        popularity_rank: i,
        name,
    })
}

/// Events per channel batch in the sharded ingestion front-end: large
/// enough to amortize the channel hand-off, small enough that bounded
/// buffering stays bounded-memory.
const INGEST_BATCH: usize = 512;

/// A world as a stream: incremental [`UniverseEvent`]s first, surveyed
/// names second. This is what every [`WorldSource`] produces and what
/// the engine ingests — the universe is built event by event through
/// `perils_core`'s incremental [`perils_core::UniverseBuilder`] and the
/// names are pulled in bounded batches, so no stage of ingestion ever
/// requires the whole feed in memory at once.
///
/// The two phases are ordered: drain [`WorldStream::events`] (or call
/// [`WorldStream::build_universe`]) before pulling
/// [`WorldStream::names`] — the dependency closures the metrics consume
/// are defined over the complete delegation structure.
pub struct WorldStream {
    events: Box<dyn Iterator<Item = UniverseEvent> + Send>,
    names: Box<dyn Iterator<Item = SurveyName> + Send>,
    top500: Vec<usize>,
    db: VulnDb,
    /// An already-built universe ([`WorldStream::of_world`]): the event
    /// phase is skipped instead of decomposing and re-interning a
    /// structure that already exists.
    prebuilt: Option<Universe>,
    /// Additional event shards ([`WorldStream::with_shard`]) ingested
    /// concurrently with the main event stream by
    /// [`WorldStream::build_universe`].
    shards: Vec<Box<dyn Iterator<Item = UniverseEvent> + Send>>,
}

impl WorldStream {
    /// Wraps the two phases of a stream plus the popularity subset.
    /// Banner assessment defaults to the paper's ISC Feb-2004 matrix
    /// ([`WorldStream::with_db`] overrides).
    pub fn new(
        events: impl Iterator<Item = UniverseEvent> + Send + 'static,
        names: impl Iterator<Item = SurveyName> + Send + 'static,
        top500: Vec<usize>,
    ) -> WorldStream {
        WorldStream {
            events: Box::new(events),
            names: Box::new(names),
            top500,
            db: VulnDb::isc_feb_2004(),
            prebuilt: None,
            shards: Vec::new(),
        }
    }

    /// Adds a parallel ingestion shard: an independent event stream (a
    /// second crawl file, another zone transfer, one deal of a split
    /// feed) drained **concurrently** with the main event stream when
    /// [`WorldStream::build_universe`] runs. Sharded builds finish with
    /// [`perils_core::UniverseBuilder::finish_canonical`], so the
    /// universe — and everything downstream — is byte-identical
    /// for every shard count and interleaving (the order-independence
    /// `stream_equivalence.rs` pins).
    pub fn with_shard(
        mut self,
        events: impl Iterator<Item = UniverseEvent> + Send + 'static,
    ) -> WorldStream {
        self.shards.push(Box::new(events));
        self
    }

    /// Replaces the vulnerability database banners are assessed against.
    pub fn with_db(mut self, db: VulnDb) -> WorldStream {
        self.db = db;
        self
    }

    /// The remaining universe events (phase one).
    pub fn events(&mut self) -> impl Iterator<Item = UniverseEvent> + '_ {
        self.events.by_ref()
    }

    /// The remaining surveyed names (phase two; pull after the events
    /// are drained).
    pub fn names(&mut self) -> impl Iterator<Item = SurveyName> + '_ {
        self.names.by_ref()
    }

    /// Indices into the name stream of the most popular subset (may be
    /// empty for scenario worlds, where popularity is meaningless).
    pub fn top500(&self) -> &[usize] {
        &self.top500
    }

    /// Drains the event phase into an incremental builder and returns
    /// the finished universe. Peak memory is the universe itself plus
    /// the builder's indexes — independent of feed length and order.
    /// Streams wrapped around a prebuilt world return it directly.
    ///
    /// With ingestion shards ([`WorldStream::with_shard`]), every shard
    /// and the main event stream are drained on producer threads feeding
    /// one builder through a bounded channel — event production
    /// (parsing, generation, decompression) overlaps the builder's
    /// interning — and the build finishes canonically, making the result
    /// independent of shard count and arrival order.
    pub fn build_universe(&mut self) -> Universe {
        if let Some(universe) = self.prebuilt.take() {
            return universe;
        }
        if self.shards.is_empty() {
            let mut builder = Universe::builder();
            for event in self.events.by_ref() {
                builder.apply(event, &self.db);
            }
            return builder.finish();
        }
        let mut producers = std::mem::take(&mut self.shards);
        producers.insert(
            0,
            std::mem::replace(&mut self.events, Box::new(std::iter::empty())),
        );
        let db = &self.db;
        crossbeam::thread::scope(|scope| {
            // Bounded batches keep peak memory independent of feed
            // length: producers block once the applier falls behind.
            let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<UniverseEvent>>(producers.len() * 2);
            for mut shard in producers.drain(..) {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    let mut batch = Vec::with_capacity(INGEST_BATCH);
                    for event in shard.by_ref() {
                        batch.push(event);
                        if batch.len() == INGEST_BATCH {
                            if tx.send(std::mem::take(&mut batch)).is_err() {
                                return;
                            }
                            batch.reserve(INGEST_BATCH);
                        }
                    }
                    if !batch.is_empty() {
                        let _ = tx.send(batch);
                    }
                });
            }
            drop(tx);
            let mut builder = Universe::builder();
            for batch in rx {
                for event in batch {
                    builder.apply(event, db);
                }
            }
            builder.finish_canonical()
        })
        .expect("crossbeam scope")
    }

    /// Materializes the whole stream into an [`AnalysisWorld`] (the
    /// collector behind the default [`WorldSource::load`]).
    pub fn collect(mut self) -> AnalysisWorld {
        let universe = self.build_universe();
        AnalysisWorld {
            universe,
            names: self.names.collect(),
            top500: self.top500,
        }
    }

    /// Wraps a prebuilt world as a stream. The universe is carried
    /// whole — [`WorldStream::build_universe`] returns it directly
    /// rather than decomposing and re-interning an existing structure
    /// (use [`Universe::into_events`] when the event *stream* itself is
    /// wanted; it round-trips verbatim, ids included).
    fn of_world(world: AnalysisWorld) -> WorldStream {
        let AnalysisWorld {
            universe,
            names,
            top500,
        } = world;
        let mut stream = WorldStream::new(std::iter::empty(), names.into_iter(), top500);
        stream.prebuilt = Some(universe);
        stream
    }
}

/// Supplies a world to the engine. Implemented by the synthetic
/// generator, hand-built packet scenarios and wire-probed dependency
/// reports, so every world kind runs through the same engine.
///
/// The primitive is **streaming**: [`WorldSource::stream`] emits the
/// world as incremental universe events plus a name stream, and the
/// provided [`WorldSource::load`] is a thin collector over it — so the
/// streamed path is the default implementation, and a source only
/// overrides `load` when it already holds a materialized world.
pub trait WorldSource {
    /// Human-readable description for diagnostics.
    fn describe(&self) -> String;

    /// Streams the world (consumes the source): universe events first,
    /// surveyed names second.
    fn stream(self) -> WorldStream;

    /// Materializes the world in one piece — a thin collector over
    /// [`WorldSource::stream`]. Generation can be costly and the engine
    /// takes ownership of the result.
    fn load(self) -> AnalysisWorld
    where
        Self: Sized,
    {
        self.stream().collect()
    }
}

impl WorldSource for AnalysisWorld {
    fn describe(&self) -> String {
        format!("prebuilt world ({} names)", self.names.len())
    }

    fn stream(self) -> WorldStream {
        WorldStream::of_world(self)
    }

    fn load(self) -> AnalysisWorld {
        self
    }
}

/// Generates a synthetic world from [`TopologyParams`].
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    /// Generator parameters.
    pub params: TopologyParams,
}

impl WorldSource for SyntheticSource {
    fn describe(&self) -> String {
        format!(
            "synthetic world (seed {}, {} names)",
            self.params.seed, self.params.names
        )
    }

    /// Plans the world, then hands the plan over as a lazy event stream:
    /// the generator never materializes a [`Universe`] of its own, and
    /// the event order matches the classic materialized build, so ids —
    /// and therefore every figure — are bit-identical.
    fn stream(self) -> WorldStream {
        let (events, names, top500) = plan_world(&self.params).into_stream_parts();
        WorldStream::new(events, names.into_iter(), top500)
    }
}

impl WorldSource for SyntheticWorld {
    fn describe(&self) -> String {
        format!("generated world ({} names)", self.names.len())
    }

    fn stream(self) -> WorldStream {
        WorldStream::of_world(self.load())
    }

    fn load(self) -> AnalysisWorld {
        AnalysisWorld {
            universe: self.universe,
            names: self.names,
            top500: self.top500,
        }
    }
}

/// Builds the world structurally from a packet-level scenario's registry
/// (ground-truth banners), surveying `targets`.
pub struct ScenarioSource<'a> {
    /// The hand-built scenario (fbi.gov, Figure 1, generated tiny worlds).
    pub scenario: &'a Scenario,
    /// The names to survey.
    pub targets: Vec<DnsName>,
}

impl WorldSource for ScenarioSource<'_> {
    fn describe(&self) -> String {
        format!("scenario world ({} targets)", self.targets.len())
    }

    fn stream(self) -> WorldStream {
        let events = scenario_events(self.scenario);
        WorldStream::new(
            events.into_iter(),
            survey_names_of(self.targets),
            Vec::new(),
        )
    }
}

/// Builds the world from wire-probed dependency reports (what the paper's
/// measurement harness saw), surveying `targets`.
pub struct ProbedSource<'a> {
    /// One report per probed name.
    pub reports: &'a [DependencyReport],
    /// The root-server names (the prober cannot see past the hints).
    pub roots: Vec<DnsName>,
    /// The names to survey.
    pub targets: Vec<DnsName>,
}

impl WorldSource for ProbedSource<'_> {
    fn describe(&self) -> String {
        format!("probed world ({} reports)", self.reports.len())
    }

    fn stream(self) -> WorldStream {
        let events = report_events(self.reports, &self.roots);
        WorldStream::new(
            events.into_iter(),
            survey_names_of(self.targets),
            Vec::new(),
        )
    }
}

/// A typed report-access failure: the requested column is absent (its
/// metric was never registered) or has a different [`ColumnKind`] than the
/// accessor asked for.
///
/// This is what the `try_*` accessors on [`SurveyReport`] return, and what
/// the figure registry turns into a skip instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// No registered metric produced the column.
    MissingColumn {
        /// The requested column id.
        column: String,
        /// Every column id the report does contain, sorted.
        available: Vec<String>,
    },
    /// The column exists but is of a different kind.
    WrongKind {
        /// The requested column id.
        column: String,
        /// The kind the accessor asked for.
        expected: ColumnKind,
        /// The kind the column actually has.
        actual: ColumnKind,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::MissingColumn { column, available } => {
                write!(
                    f,
                    "no metric produced column {column:?}; available: {available:?}"
                )
            }
            ReportError::WrongKind {
                column,
                expected,
                actual,
            } => write!(f, "column {column:?} is {actual}, not {expected}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// Columnar survey results keyed by metric column id.
#[derive(Debug)]
pub struct SurveyReport {
    /// The surveyed world.
    pub world: AnalysisWorld,
    columns: BTreeMap<String, MetricColumn>,
    /// `(name index, exact size, exact safe members)` for the sampled
    /// exact hijack runs (empty unless configured).
    pub exact_sample: Vec<(usize, usize, usize)>,
}

impl SurveyReport {
    /// The column for `id`, if a registered metric produced it.
    pub fn column(&self, id: &str) -> Option<&MetricColumn> {
        self.columns.get(id)
    }

    /// All column ids, sorted.
    pub fn column_ids(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// The report's column schema: every `(id, kind)` pair, sorted by id.
    /// This is what figure registries match `required_columns` against.
    pub fn schema(&self) -> impl Iterator<Item = (&str, ColumnKind)> {
        self.columns.iter().map(|(id, c)| (id.as_str(), c.kind()))
    }

    /// The column for `id`, or a typed [`ReportError::MissingColumn`].
    pub fn try_column(&self, id: &str) -> Result<&MetricColumn, ReportError> {
        self.columns
            .get(id)
            .ok_or_else(|| ReportError::MissingColumn {
                column: id.to_string(),
                available: self.columns.keys().cloned().collect(),
            })
    }

    /// Per-name counts column `id`, or a typed error.
    pub fn try_counts(&self, id: &str) -> Result<&[usize], ReportError> {
        let column = self.try_column(id)?;
        column.as_counts().ok_or_else(|| ReportError::WrongKind {
            column: id.to_string(),
            expected: ColumnKind::Counts,
            actual: column.kind(),
        })
    }

    /// Per-name floats column `id`, or a typed error.
    pub fn try_floats(&self, id: &str) -> Result<&[f64], ReportError> {
        let column = self.try_column(id)?;
        column.as_floats().ok_or_else(|| ReportError::WrongKind {
            column: id.to_string(),
            expected: ColumnKind::Floats,
            actual: column.kind(),
        })
    }

    /// The names-controlled aggregate column `id`, or a typed error.
    pub fn try_value_column(&self, id: &str) -> Result<&ValueIndex, ReportError> {
        let column = self.try_column(id)?;
        column.as_value().ok_or_else(|| ReportError::WrongKind {
            column: id.to_string(),
            expected: ColumnKind::Value,
            actual: column.kind(),
        })
    }

    /// Per-name counts column `id`.
    ///
    /// Thin convenience over [`SurveyReport::try_counts`].
    ///
    /// # Panics
    ///
    /// Panics when the column is missing or not a counts column.
    pub fn counts(&self, id: &str) -> &[usize] {
        self.try_counts(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Per-name floats column `id`.
    ///
    /// Thin convenience over [`SurveyReport::try_floats`].
    ///
    /// # Panics
    ///
    /// Panics when the column is missing or not a floats column.
    pub fn floats(&self, id: &str) -> &[f64] {
        self.try_floats(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// TCB size per name (root servers excluded).
    pub fn tcb_sizes(&self) -> &[usize] {
        self.counts(columns::TCB_SIZE)
    }

    /// Nameowner-administered TCB members per name.
    pub fn nameowner(&self) -> &[usize] {
        self.counts(columns::NAMEOWNER)
    }

    /// Vulnerable TCB members per name.
    pub fn vulnerable_in_tcb(&self) -> &[usize] {
        self.counts(columns::VULNERABLE_IN_TCB)
    }

    /// Percent of TCB with no known vulnerability, per name.
    pub fn safety_percent(&self) -> &[f64] {
        self.floats(columns::SAFETY_PERCENT)
    }

    /// Flattened min-cut size per name (0: uncuttable / root-served).
    pub fn cut_size(&self) -> &[usize] {
        self.counts(columns::CUT_SIZE)
    }

    /// Non-vulnerable members of the min-cut per name.
    pub fn safe_in_cut(&self) -> &[usize] {
        self.counts(columns::SAFE_IN_CUT)
    }

    /// Names-controlled aggregate over all surveyed names.
    ///
    /// Thin convenience over [`SurveyReport::try_value_column`].
    ///
    /// # Panics
    ///
    /// Panics when no value metric was registered.
    pub fn value(&self) -> &ValueIndex {
        self.try_value_column(columns::VALUE)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Indices of the top-500 popular names (forwarded from the world).
    pub fn top500(&self) -> &[usize] {
        &self.world.top500
    }

    /// Selects per-name values for the top-500 subset.
    pub fn top500_of<T: Copy>(&self, values: &[T]) -> Vec<T> {
        self.world.top500.iter().map(|&i| values[i]).collect()
    }
}

/// The survey engine: registered metrics plus execution knobs.
pub struct Engine {
    metrics: Vec<Box<dyn NameMetric>>,
    threads: Option<NonZeroUsize>,
    exact_hijack_sample: usize,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with no metrics registered.
    pub fn new() -> Engine {
        Engine {
            metrics: Vec::new(),
            threads: None,
            exact_hijack_sample: 0,
        }
    }

    /// The six seed measurements: TCB statistics, flattened min-cut and
    /// the names-controlled value ranking.
    pub fn with_builtin_metrics() -> Engine {
        Engine::new()
            .register(TcbMetric)
            .register(MinCutMetric)
            .register(ValueMetric)
    }

    /// The built-ins plus the misconfiguration audit and DNSSEC-coverage
    /// metrics (the extended workload set).
    pub fn with_extended_metrics() -> Engine {
        Engine::with_builtin_metrics()
            .register(MisconfigMetric::default())
            .register(DnssecCoverageMetric::top_level())
    }

    /// Registers a metric.
    ///
    /// # Panics
    ///
    /// Panics when the metric's id or any of its column ids collides with
    /// an already-registered metric.
    pub fn register(mut self, metric: impl NameMetric + 'static) -> Engine {
        for existing in &self.metrics {
            assert_ne!(
                existing.id(),
                metric.id(),
                "duplicate metric id {:?}",
                metric.id()
            );
            for column in existing.columns() {
                assert!(
                    !metric.columns().contains(&column),
                    "metric {:?} re-declares column {column:?} of {:?}",
                    metric.id(),
                    existing.id()
                );
            }
        }
        self.metrics.push(Box::new(metric));
        self
    }

    /// Sets the worker thread count (`None`: available parallelism).
    pub fn threads(mut self, threads: Option<NonZeroUsize>) -> Engine {
        self.threads = threads;
        self
    }

    /// Also runs the exact AND/OR hijack search on the first `n` names.
    pub fn exact_hijack_sample(mut self, n: usize) -> Engine {
        self.exact_hijack_sample = n;
        self
    }

    /// Ids of the registered metrics, in registration order.
    pub fn metric_ids(&self) -> Vec<&str> {
        self.metrics.iter().map(|m| m.id()).collect()
    }

    /// Loads `source` and runs every registered metric over it in one
    /// batch (peak accumulator memory proportional to the name count;
    /// see [`Engine::run_batched`] for the bounded-memory pass). The
    /// universe itself is still ingested through the source's event
    /// stream — [`WorldSource::load`] is a collector over
    /// [`WorldSource::stream`] unless the source holds a prebuilt world.
    pub fn run(&self, source: impl WorldSource) -> SurveyReport {
        self.run_world(source.load())
    }

    /// Streams `source` end to end in bounded batches: the universe is
    /// built incrementally from the source's event stream, then names
    /// are pulled through the sharded loop `batch_size` at a time, each
    /// batch's shards merged immediately and the merged columns appended
    /// across batches. Peak accumulator memory is therefore proportional
    /// to `batch_size × threads`, not to the name count — the knob that
    /// keeps 593k-name paper-scale runs memory-bounded.
    ///
    /// The result is identical to [`Engine::run`] for every batch size:
    /// per-name columns concatenate in survey order and aggregate columns
    /// merge commutatively ([`MetricColumn::append`]).
    pub fn run_batched(&self, source: impl WorldSource, batch_size: NonZeroUsize) -> SurveyReport {
        self.run_stream(source.stream(), batch_size)
    }

    /// Runs every registered metric over an already-built world.
    pub fn run_world(&self, world: AnalysisWorld) -> SurveyReport {
        let threads = self.thread_count();
        let index = DependencyIndex::build_with_threads(&world.universe, threads);
        self.run_world_indexed(world, &index)
    }

    /// [`Engine::run_world`] over a **prebuilt** dependency index — the
    /// snapshot-loading path: a world reconstituted from a `.psa` archive
    /// already carries its index, so the survey can skip the index build
    /// entirely. `index` must have been built from (or validated against)
    /// `world.universe`; the snapshot decoder guarantees this for loaded
    /// archives.
    pub fn run_world_indexed(&self, world: AnalysisWorld, index: &DependencyIndex) -> SurveyReport {
        let threads = self.thread_count();
        let prepared: Vec<PreparedState> = self
            .metrics
            .iter()
            .map(|m| m.prepare(&world.universe))
            .collect();
        let n = world.names.len();
        let batch = n.max(1);
        let mut merged: BTreeMap<String, MetricColumn> = BTreeMap::new();
        let mut start = 0usize;
        loop {
            let len = batch.min(n - start);
            self.run_batch(
                &world.universe,
                index,
                &prepared,
                &world.names[start..start + len],
                start,
                threads,
                &mut merged,
            );
            start += len;
            if start >= n {
                break;
            }
        }
        self.finish_report(world, index, merged)
    }

    /// Runs the survey over an already-started [`WorldStream`] (what
    /// [`Engine::run_batched`] does after calling
    /// [`WorldSource::stream`]): build the universe from the event
    /// phase, then pull names in `batch_size`-bounded batches.
    pub fn run_stream(&self, mut stream: WorldStream, batch_size: NonZeroUsize) -> SurveyReport {
        let threads = self.thread_count();
        let universe = stream.build_universe();
        let index = DependencyIndex::build_with_threads(&universe, threads);
        let prepared: Vec<PreparedState> =
            self.metrics.iter().map(|m| m.prepare(&universe)).collect();
        let batch = batch_size.get();
        let mut merged: BTreeMap<String, MetricColumn> = BTreeMap::new();
        let mut names: Vec<SurveyName> = Vec::new();
        loop {
            let start = names.len();
            let batch_names: Vec<SurveyName> = stream.names.by_ref().take(batch).collect();
            if batch_names.is_empty() && start > 0 {
                break;
            }
            self.run_batch(
                &universe,
                &index,
                &prepared,
                &batch_names,
                start,
                threads,
                &mut merged,
            );
            let got = batch_names.len();
            names.extend(batch_names);
            if got < batch {
                break;
            }
        }
        let world = AnalysisWorld {
            universe,
            names,
            top500: stream.top500,
        };
        self.finish_report(world, &index, merged)
    }

    fn thread_count(&self) -> usize {
        self.threads
            .map(NonZeroUsize::get)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(4)
            })
            .clamp(1, 16)
    }

    /// One sharded pass over a contiguous batch of names
    /// (`batch_start..batch_start + batch.len()` in survey order): each
    /// worker owns one contiguous sub-range and its own accumulators,
    /// the closure is computed once per name as a borrowed view and
    /// shared by every metric, and the batch's merged columns land in
    /// `merged` (inserted on the first batch, appended afterwards).
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        universe: &Universe,
        index: &DependencyIndex,
        prepared: &[PreparedState],
        batch: &[SurveyName],
        batch_start: usize,
        threads: usize,
        merged: &mut BTreeMap<String, MetricColumn>,
    ) {
        let batch_len = batch.len();
        let metrics = &self.metrics;

        // Shard the batch's name range.
        let chunk = batch_len.div_ceil(threads).max(1);
        let mut worker_shards: Vec<Vec<Box<dyn MetricShard>>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut start = 0usize;
            while start < batch_len {
                let len = chunk.min(batch_len - start);
                let range = start..start + len;
                handles.push(scope.spawn(move |_| {
                    let mut shards: Vec<Box<dyn MetricShard>> = metrics
                        .iter()
                        .zip(prepared)
                        .map(|(m, p)| m.shard(universe, len, p))
                        .collect();
                    let mut ws = index.workspace();
                    for (slot, i) in range.enumerate() {
                        // The closure is computed once per name as a
                        // borrowed view — no per-name set allocation —
                        // and shared by every registered metric.
                        let ctx = MeasureCtx {
                            universe,
                            index,
                            name: &batch[i].name,
                            name_index: batch_start + i,
                            closure: index.closure_view(universe, &batch[i].name, &mut ws),
                        };
                        for shard in &mut shards {
                            shard.measure(&ctx, slot);
                        }
                    }
                    shards
                }));
                start += len;
            }
            for handle in handles {
                worker_shards.push(handle.join().expect("survey shard panicked"));
            }
        })
        .expect("crossbeam scope");

        // Transpose worker-major into metric-major, preserving range
        // order, and merge this batch.
        let mut per_metric: Vec<Vec<Box<dyn MetricShard>>> =
            (0..self.metrics.len()).map(|_| Vec::new()).collect();
        for worker in worker_shards {
            for (k, shard) in worker.into_iter().enumerate() {
                per_metric[k].push(shard);
            }
        }
        for (metric, shards) in self.metrics.iter().zip(per_metric) {
            for (id, column) in metric.merge(universe, shards) {
                if let Some(len) = column.len() {
                    assert_eq!(
                        len,
                        batch_len,
                        "metric {:?} column {id:?} has wrong batch length",
                        metric.id()
                    );
                }
                match merged.entry(id) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        if batch_start > 0 {
                            panic!(
                                "metric {:?} produced column {:?} only after the first batch",
                                metric.id(),
                                slot.key()
                            );
                        }
                        slot.insert(column);
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        assert!(batch_start > 0, "duplicate metric column {:?}", slot.key());
                        slot.get_mut().append(column);
                    }
                }
            }
        }
    }

    /// Verifies column lengths, runs the exact hijack sample and wraps
    /// the report.
    fn finish_report(
        &self,
        world: AnalysisWorld,
        index: &DependencyIndex,
        merged: BTreeMap<String, MetricColumn>,
    ) -> SurveyReport {
        let n = world.names.len();
        for (id, column) in &merged {
            if let Some(len) = column.len() {
                assert_eq!(len, n, "column {id:?} has wrong total length");
            }
        }

        // Exact hijack sample (sequential; used by the ablation analysis).
        let mut exact_sample = Vec::new();
        let mut ws = index.workspace();
        for i in 0..self.exact_hijack_sample.min(n) {
            let closure = index.closure_for_with(&world.universe, &world.names[i].name, &mut ws);
            if let Some(exact) = min_hijack_exact(&world.universe, &closure) {
                exact_sample.push((i, exact.size(), exact.safe_members));
            }
        }

        SurveyReport {
            world,
            columns: merged,
            exact_sample,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_core::metric::columns;

    fn tiny_engine() -> Engine {
        Engine::with_extended_metrics()
    }

    #[test]
    fn engine_runs_all_metrics_over_synthetic_source() {
        let report = tiny_engine().run(SyntheticSource {
            params: TopologyParams::tiny(41),
        });
        let n = report.world.names.len();
        assert!(n > 0);
        for id in [
            columns::TCB_SIZE,
            columns::NAMEOWNER,
            columns::VULNERABLE_IN_TCB,
            columns::CUT_SIZE,
            columns::SAFE_IN_CUT,
            columns::MISCONFIG_FLAGS,
            columns::MISCONFIG_DEPTH,
            columns::DNSSEC_CHAIN_PROTECTED,
        ] {
            assert_eq!(report.counts(id).len(), n, "{id}");
        }
        assert_eq!(report.floats(columns::SAFETY_PERCENT).len(), n);
        assert_eq!(report.floats(columns::DNSSEC_SIGNED_FRACTION).len(), n);
        assert_eq!(report.value().names_seen() as usize, n);
    }

    #[test]
    fn engine_accepts_prebuilt_and_generated_worlds() {
        let world = SyntheticWorld::generate(&TopologyParams::tiny(43));
        let names = world.names.len();
        let report = Engine::with_builtin_metrics().run(world);
        assert_eq!(report.tcb_sizes().len(), names);
    }

    #[test]
    #[should_panic(expected = "duplicate metric id")]
    fn duplicate_metric_rejected() {
        let _ = Engine::with_builtin_metrics().register(perils_core::TcbMetric);
    }

    #[test]
    #[should_panic(expected = "no metric produced column")]
    fn missing_column_panics_with_listing() {
        let report = Engine::new().run(SyntheticSource {
            params: TopologyParams::tiny(47),
        });
        let _ = report.tcb_sizes();
    }

    #[test]
    fn try_accessors_return_typed_errors() {
        let report = Engine::with_builtin_metrics().run(SyntheticSource {
            params: TopologyParams::tiny(47),
        });
        // Present and well-typed.
        assert!(report.try_counts(columns::TCB_SIZE).is_ok());
        assert!(report.try_floats(columns::SAFETY_PERCENT).is_ok());
        assert!(report.try_value_column(columns::VALUE).is_ok());
        // Absent column.
        match report.try_counts("no_such_column") {
            Err(ReportError::MissingColumn { column, available }) => {
                assert_eq!(column, "no_such_column");
                assert!(available.contains(&columns::TCB_SIZE.to_string()));
            }
            other => panic!("expected MissingColumn, got {other:?}"),
        }
        // Wrong kind.
        match report.try_counts(columns::SAFETY_PERCENT) {
            Err(ReportError::WrongKind {
                expected, actual, ..
            }) => {
                assert_eq!(expected, ColumnKind::Counts);
                assert_eq!(actual, ColumnKind::Floats);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
        assert!(report.try_floats(columns::TCB_SIZE).is_err());
        assert!(report.try_value_column(columns::TCB_SIZE).is_err());
    }

    #[test]
    fn schema_lists_every_column_with_kind() {
        let report = Engine::with_builtin_metrics().run(SyntheticSource {
            params: TopologyParams::tiny(47),
        });
        let schema: std::collections::BTreeMap<&str, ColumnKind> = report.schema().collect();
        assert_eq!(schema.len(), report.column_ids().count());
        assert_eq!(schema[columns::TCB_SIZE], ColumnKind::Counts);
        assert_eq!(schema[columns::SAFETY_PERCENT], ColumnKind::Floats);
        assert_eq!(schema[columns::VALUE], ColumnKind::Value);
    }

    #[test]
    fn batched_run_matches_unbatched() {
        let params = TopologyParams::tiny(53);
        let engine = tiny_engine();
        let baseline = engine.run(SyntheticSource {
            params: params.clone(),
        });
        let n = baseline.world.names.len();
        assert!(n > 0);
        for batch in [1usize, 7, 64, n] {
            let batched = engine.run_batched(
                SyntheticSource {
                    params: params.clone(),
                },
                NonZeroUsize::new(batch).unwrap(),
            );
            for id in baseline.column_ids() {
                let a = baseline.column(id).expect("baseline column");
                let b = batched.column(id).expect("batched column");
                match (a, b) {
                    (MetricColumn::Counts(x), MetricColumn::Counts(y)) => {
                        assert_eq!(x, y, "{id} at batch {batch}")
                    }
                    (MetricColumn::Floats(x), MetricColumn::Floats(y)) => {
                        assert_eq!(x, y, "{id} at batch {batch}")
                    }
                    (MetricColumn::Value(x), MetricColumn::Value(y)) => {
                        assert_eq!(x.ranking(), y.ranking(), "{id} at batch {batch}");
                        assert_eq!(x.names_seen(), y.names_seen());
                    }
                    _ => panic!("{id} changed kind at batch {batch}"),
                }
            }
        }
    }

    #[test]
    fn world_stream_phases_compose_manually() {
        // The events()/names() API drives ingestion by hand: drain the
        // event phase into a builder, then pull names.
        let mut stream = SyntheticSource {
            params: TopologyParams::tiny(59),
        }
        .stream();
        let universe = stream.build_universe();
        assert!(universe.zone_count() > 0);
        let names: Vec<_> = stream.names().take(10).collect();
        assert_eq!(names.len(), 10);
        // Every pulled name resolves against the streamed universe.
        for n in &names {
            assert!(universe.zone_of(&n.name).is_some(), "{}", n.name);
        }
        assert!(!stream.top500().is_empty());
    }

    #[test]
    fn scenario_source_streams_and_batches_identically() {
        use perils_authserver::scenarios::fbi_case;
        use perils_dns::name::name;
        let scenario = fbi_case();
        let targets = vec![name("www.fbi.gov")];
        let full = Engine::with_builtin_metrics().run(ScenarioSource {
            scenario: &scenario,
            targets: targets.clone(),
        });
        let batched = Engine::with_builtin_metrics().run_batched(
            ScenarioSource {
                scenario: &scenario,
                targets,
            },
            NonZeroUsize::new(1).unwrap(),
        );
        assert_eq!(full.tcb_sizes(), batched.tcb_sizes());
        assert_eq!(full.cut_size(), batched.cut_size());
        assert_eq!(full.world.universe, batched.world.universe);
    }

    #[test]
    fn batched_run_handles_empty_world() {
        let world = AnalysisWorld::from_targets(perils_core::universe::Universe::default(), vec![]);
        let report =
            Engine::with_builtin_metrics().run_batched(world, NonZeroUsize::new(16).unwrap());
        assert!(report.tcb_sizes().is_empty());
        assert_eq!(report.value().names_seen(), 0);
    }

    #[test]
    fn describe_names_the_source() {
        let source = SyntheticSource {
            params: TopologyParams::tiny(1),
        };
        assert!(source.describe().contains("seed 1"));
    }
}
