//! The pluggable rendering pipeline: figures, the registry, and sinks.
//!
//! PR 1 made the *measurement* side pluggable ([`NameMetric`] → columnar
//! [`SurveyReport`]); this module does the same for the *output* side. A
//! [`Figure`] declares the column ids it needs and builds a
//! [`RenderedFigure`] from a report; a [`FigureRegistry`] holds figures,
//! checks each one's [`Figure::required_columns`] against
//! [`SurveyReport::column_ids`] **before** building — so a figure whose
//! metric was never registered is a typed skip ([`FigureOutcome::Skipped`]),
//! not a panic — and a [`ReportSink`] decides where rendered figures go
//! (stdout, one file per figure, any format). A custom metric ships its own
//! figure by implementing the two traits and registering both; neither the
//! engine nor the figures CLI needs to change.
//!
//! [`NameMetric`]: perils_core::NameMetric

use crate::engine::{ReportError, SurveyReport};
use perils_util::table::Table;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A figure build failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FigureError {
    /// The report lacks columns the figure requires (its metric was not
    /// registered for the run).
    MissingColumns {
        /// The figure id.
        figure: String,
        /// The required column ids the report does not contain.
        missing: Vec<String>,
    },
    /// A column access failed while building (missing or wrong kind).
    Report(ReportError),
    /// The registry holds no figure with the requested id.
    UnknownFigure {
        /// The requested id.
        figure: String,
        /// Every id the registry does hold, in registration order.
        known: Vec<String>,
    },
}

impl From<ReportError> for FigureError {
    fn from(e: ReportError) -> FigureError {
        FigureError::Report(e)
    }
}

impl std::fmt::Display for FigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FigureError::MissingColumns { figure, missing } => {
                write!(f, "figure {figure:?} requires absent columns {missing:?}")
            }
            FigureError::Report(e) => write!(f, "{e}"),
            FigureError::UnknownFigure { figure, known } => {
                write!(f, "unknown figure {figure:?}; registered: {known:?}")
            }
        }
    }
}

impl std::error::Error for FigureError {}

/// A renderable paper artifact: declares the report columns it consumes
/// and builds a [`RenderedFigure`] from them.
///
/// Implementations must read the report **only** through the `try_*`
/// accessors (or equivalently return [`FigureError`] on absence) so the
/// registry's column check stays the single source of skip decisions.
pub trait Figure: Send + Sync {
    /// Stable identifier (unique per registry; used for `--only` and file
    /// names).
    fn id(&self) -> &str;

    /// Human-readable title (the text rendering's first line).
    fn title(&self) -> &str;

    /// The column ids this figure reads. The registry skips the figure
    /// when any of them is absent from the report.
    fn required_columns(&self) -> &[&str];

    /// Builds the figure from a report whose schema satisfied
    /// [`Figure::required_columns`].
    fn build(&self, report: &SurveyReport) -> Result<RenderedFigure, FigureError>;
}

/// A fully built figure, ready to serialize into any [`SinkFormat`].
///
/// Holds the aligned-text rendering verbatim (figures predating the
/// registry keep their exact legacy output) plus the underlying data
/// table, from which CSV and JSON are derived.
#[derive(Debug, Clone)]
pub struct RenderedFigure {
    id: String,
    title: String,
    text: String,
    data: Table,
}

impl RenderedFigure {
    /// Wraps a rendered figure: `text` is the aligned-text form, `data`
    /// the flat data table behind the CSV/JSON forms.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        text: impl Into<String>,
        data: Table,
    ) -> RenderedFigure {
        RenderedFigure {
            id: id.into(),
            title: title.into(),
            text: text.into(),
            data,
        }
    }

    /// The figure id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The aligned-text rendering.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The flat data table (CSV headers + rows).
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// The CSV rendering of the data table.
    pub fn csv(&self) -> String {
        self.data.render_csv()
    }

    /// The JSON rendering: `{"id", "title", "columns", "rows"}` with every
    /// cell as a string (cells are formatted, not raw, values).
    pub fn json(&self) -> String {
        let mut out = String::from("{\"id\":");
        json_string(&mut out, &self.id);
        out.push_str(",\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"columns\":[");
        for (i, h) in self.data.headers().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (r, row) in self.data.rows().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(&mut out, cell);
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// A self-contained gnuplot script: the data table inlined as a
    /// `$data` here-doc block followed by a minimal `plot` command, so
    /// `gnuplot fig.gp` renders `<id>.png` with no side files. Every
    /// column is charted against the first; a non-numeric first column
    /// switches to categorical x tics.
    pub fn gnuplot(&self) -> String {
        let clean = |s: &str| s.replace(['\t', '\n'], " ");
        let headers = self.data.headers();
        let mut out = format!("# {} ({})\n$data << EOD\n", clean(&self.title), self.id);
        for (i, h) in headers.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push_str(&clean(h));
        }
        out.push('\n');
        let mut numeric_x = true;
        for row in self.data.rows() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                } else if cell.trim().parse::<f64>().is_err() {
                    numeric_x = false;
                }
                out.push_str(&clean(cell));
            }
            out.push('\n');
        }
        out.push_str("EOD\n");
        out.push_str("set datafile separator \"\\t\"\n");
        out.push_str("set term pngcairo size 960,600\n");
        let quoted = |s: &str| {
            format!(
                "\"{}\"",
                clean(s).replace('\\', "\\\\").replace('"', "\\\"")
            )
        };
        out.push_str(&format!(
            "set output {}\n",
            quoted(&format!("{}.png", self.id))
        ));
        out.push_str(&format!("set title {}\n", quoted(&self.title)));
        out.push_str("set key autotitle columnhead outside\n");
        out.push_str("set style data linespoints\n");
        if let Some(x) = headers.first() {
            out.push_str(&format!("set xlabel {}\n", quoted(x)));
        }
        let cols = headers.len();
        if cols >= 2 {
            if numeric_x {
                out.push_str(&format!("plot for [i=2:{cols}] $data using 1:i\n"));
            } else {
                out.push_str(&format!(
                    "set xtics rotate by -45\nplot for [i=2:{cols}] $data using i:xtic(1)\n"
                ));
            }
        } else {
            out.push_str("plot $data using 0:1\n");
        }
        out
    }

    /// A self-contained [Vega-Lite v5] spec: the data table inlined as
    /// `data.values` (cells that are valid JSON number tokens are
    /// spliced as JSON numbers, everything else stays a string),
    /// charted as a line plot of every
    /// column against the first. With more than two columns a `fold`
    /// transform melts them into one series axis colored by column name;
    /// a non-numeric first column switches the x encoding to ordinal and
    /// the mark to bars — the same form heuristic as the gnuplot sink.
    ///
    /// [Vega-Lite v5]: https://vega.github.io/vega-lite/
    pub fn vega(&self) -> String {
        let headers = self.data.headers();
        // The cell is spliced into the spec verbatim when "numeric", so
        // the check must be the JSON number *grammar*, not
        // `str::parse::<f64>` — the latter accepts `NaN`, `inf`, `1.`,
        // `.5`, `+2`, all of which would corrupt the emitted document.
        let numeric = |cell: &str| {
            matches!(
                perils_util::json::parse(cell.trim()),
                Ok(perils_util::json::Value::Number(_))
            )
        };
        let mut numeric_x = true;
        let mut out = String::from(
            "{\"$schema\":\"https://vega.github.io/schema/vega-lite/v5.json\",\"title\":",
        );
        json_string(&mut out, &self.title);
        out.push_str(",\"name\":");
        json_string(&mut out, &self.id);
        out.push_str(",\"data\":{\"values\":[");
        for (r, row) in self.data.rows().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(&mut out, headers.get(i).map(String::as_str).unwrap_or(""));
                out.push(':');
                if numeric(cell) {
                    out.push_str(cell.trim());
                } else {
                    if i == 0 {
                        numeric_x = false;
                    }
                    json_string(&mut out, cell);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        let x_field = headers.first().map(String::as_str).unwrap_or("x");
        let x_type = if numeric_x { "quantitative" } else { "ordinal" };
        let mark = if numeric_x { "line" } else { "bar" };
        match headers.len() {
            0 | 1 => {
                // Degenerate single-column table: chart values by row index.
                out.push_str(",\"mark\":\"point\",\"encoding\":{\"y\":{\"field\":");
                json_string(&mut out, x_field);
                out.push_str(",\"type\":\"quantitative\"}}}");
            }
            2 => {
                out.push_str(&format!(
                    ",\"mark\":\"{mark}\",\"encoding\":{{\"x\":{{\"field\":"
                ));
                json_string(&mut out, x_field);
                out.push_str(&format!(",\"type\":\"{x_type}\"}},\"y\":{{\"field\":"));
                json_string(&mut out, &headers[1]);
                out.push_str(",\"type\":\"quantitative\"}}}");
            }
            _ => {
                // Melt columns 2..n into (key, value) pairs, one colored
                // series per original column.
                out.push_str(",\"transform\":[{\"fold\":[");
                for (i, h) in headers[1..].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json_string(&mut out, h);
                }
                out.push_str(&format!(
                    "]}}],\"mark\":\"{mark}\",\"encoding\":{{\"x\":{{\"field\":"
                ));
                json_string(&mut out, x_field);
                out.push_str(&format!(
                    ",\"type\":\"{x_type}\"}},\"y\":{{\"field\":\"value\",\"type\":\"quantitative\"}},\
                     \"color\":{{\"field\":\"key\",\"type\":\"nominal\"}}}}}}"
                ));
            }
        }
        out
    }

    /// Serializes into `format`.
    pub fn emit(&self, format: SinkFormat) -> String {
        match format {
            SinkFormat::Text => self.text.clone(),
            SinkFormat::Csv => self.csv(),
            SinkFormat::Json => self.json(),
            SinkFormat::Gnuplot => self.gnuplot(),
            SinkFormat::Vega => self.vega(),
        }
    }
}

use perils_util::json::push_json_string as json_string;

/// The serialization a sink writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// Aligned text tables (the EXPERIMENTS.md data source).
    Text,
    /// RFC4180-style CSV, one table per figure.
    Csv,
    /// One JSON object per figure.
    Json,
    /// One self-contained gnuplot script per figure (inline data block).
    Gnuplot,
    /// One self-contained Vega-Lite v5 spec per figure (inline data).
    Vega,
}

impl SinkFormat {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Option<SinkFormat> {
        match s {
            "text" => Some(SinkFormat::Text),
            "csv" => Some(SinkFormat::Csv),
            "json" => Some(SinkFormat::Json),
            "gnuplot" => Some(SinkFormat::Gnuplot),
            "vega" => Some(SinkFormat::Vega),
            _ => None,
        }
    }

    /// The file extension for directory sinks.
    pub fn extension(self) -> &'static str {
        match self {
            SinkFormat::Text => "txt",
            SinkFormat::Csv => "csv",
            SinkFormat::Json => "json",
            SinkFormat::Gnuplot => "gp",
            SinkFormat::Vega => "vl.json",
        }
    }
}

/// Where rendered figures go. `--csv DIR` is one implementation
/// ([`DirectorySink`] with [`SinkFormat::Csv`]); stdout is another.
pub trait ReportSink {
    /// Consumes one rendered figure.
    fn emit(&mut self, figure: &RenderedFigure) -> std::io::Result<()>;

    /// Flushes any buffered output (directory sinks are unbuffered; writer
    /// sinks flush the inner writer).
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams every figure to one writer (stdout, a file, a test buffer),
/// separated by blank lines in text mode.
pub struct WriterSink<W: Write> {
    writer: W,
    format: SinkFormat,
}

impl<W: Write> WriterSink<W> {
    /// Wraps `writer`, serializing as `format`.
    pub fn new(writer: W, format: SinkFormat) -> WriterSink<W> {
        WriterSink { writer, format }
    }
}

impl<W: Write> ReportSink for WriterSink<W> {
    fn emit(&mut self, figure: &RenderedFigure) -> std::io::Result<()> {
        let payload = figure.emit(self.format);
        self.writer.write_all(payload.as_bytes())?;
        // Text/CSV renderings end in one newline, JSON in none; one blank
        // separator keeps a concatenated stream readable and
        // line-delimited.
        writeln!(self.writer)
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// Writes one `<id>.<ext>` file per figure into a directory, creating the
/// directory (and parents) if missing.
pub struct DirectorySink {
    dir: PathBuf,
    format: SinkFormat,
    written: Vec<PathBuf>,
}

impl DirectorySink {
    /// Creates the sink; the directory is created on first emit.
    pub fn new(dir: impl Into<PathBuf>, format: SinkFormat) -> DirectorySink {
        DirectorySink {
            dir: dir.into(),
            format,
            written: Vec::new(),
        }
    }

    /// The files written so far.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// The target directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ReportSink for DirectorySink {
    fn emit(&mut self, figure: &RenderedFigure) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self
            .dir
            .join(format!("{}.{}", figure.id(), self.format.extension()));
        std::fs::write(&path, figure.emit(self.format))?;
        self.written.push(path);
        Ok(())
    }
}

/// Writes one `<id>.csv` file per figure, **streaming row-at-a-time**:
/// each row of the figure's data table goes through a bounded
/// [`std::io::BufWriter`] straight to disk, so no full-table CSV string
/// is ever materialized — the paper-scale CDF figures (hundreds of
/// thousands of rows) export with a flat memory profile. Output bytes
/// are identical to [`DirectorySink`] with [`SinkFormat::Csv`].
pub struct StreamingCsvSink {
    dir: PathBuf,
    written: Vec<PathBuf>,
}

impl StreamingCsvSink {
    /// Creates the sink; the directory is created on first emit.
    pub fn new(dir: impl Into<PathBuf>) -> StreamingCsvSink {
        StreamingCsvSink {
            dir: dir.into(),
            written: Vec::new(),
        }
    }

    /// The files written so far.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// The target directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ReportSink for StreamingCsvSink {
    fn emit(&mut self, figure: &RenderedFigure) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{}.csv", figure.id()));
        let file = std::fs::File::create(&path)?;
        let mut writer = std::io::BufWriter::new(file);
        figure.data().write_csv(&mut writer)?;
        writer.flush()?;
        self.written.push(path);
        Ok(())
    }
}

/// The per-figure result of a registry pass over one report.
#[derive(Debug)]
pub enum FigureOutcome {
    /// The figure built successfully.
    Rendered(RenderedFigure),
    /// The report lacks required columns; the figure was not built.
    Skipped {
        /// The figure id.
        id: String,
        /// The absent column ids.
        missing: Vec<String>,
    },
    /// The column check passed but the build still failed.
    Failed {
        /// The figure id.
        id: String,
        /// The failure.
        error: FigureError,
    },
}

impl FigureOutcome {
    /// The id of the figure this outcome belongs to.
    pub fn id(&self) -> &str {
        match self {
            FigureOutcome::Rendered(f) => f.id(),
            FigureOutcome::Skipped { id, .. } | FigureOutcome::Failed { id, .. } => id,
        }
    }

    /// The rendered figure, when the build succeeded.
    pub fn rendered(&self) -> Option<&RenderedFigure> {
        match self {
            FigureOutcome::Rendered(f) => Some(f),
            _ => None,
        }
    }
}

/// An ordered collection of figures keyed by id, with column-schema
/// checking. Registration order is presentation order.
#[derive(Default)]
pub struct FigureRegistry {
    figures: Vec<Box<dyn Figure>>,
}

impl FigureRegistry {
    /// An empty registry.
    pub fn new() -> FigureRegistry {
        FigureRegistry::default()
    }

    /// Registers a figure.
    ///
    /// # Panics
    ///
    /// Panics when the figure's id collides with an already-registered
    /// figure (mirroring `Engine::register`).
    pub fn register(mut self, figure: impl Figure + 'static) -> FigureRegistry {
        assert!(
            !self.figures.iter().any(|f| f.id() == figure.id()),
            "duplicate figure id {:?}",
            figure.id()
        );
        self.figures.push(Box::new(figure));
        self
    }

    /// Number of registered figures.
    pub fn len(&self) -> usize {
        self.figures.len()
    }

    /// True when no figure is registered.
    pub fn is_empty(&self) -> bool {
        self.figures.is_empty()
    }

    /// The registered figures, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Figure> {
        self.figures.iter().map(Box::as_ref)
    }

    /// The registered figure ids, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.figures.iter().map(|f| f.id()).collect()
    }

    /// Looks up a figure by id.
    pub fn get(&self, id: &str) -> Option<&dyn Figure> {
        self.figures.iter().find(|f| f.id() == id).map(Box::as_ref)
    }

    /// The required columns of `figure` that `report` does not contain.
    pub fn missing_columns(figure: &dyn Figure, report: &SurveyReport) -> Vec<String> {
        figure
            .required_columns()
            .iter()
            .filter(|&&c| report.column(c).is_none())
            .map(|&c| c.to_string())
            .collect()
    }

    /// Builds one figure by id, checking its required columns first.
    pub fn build(&self, id: &str, report: &SurveyReport) -> Result<RenderedFigure, FigureError> {
        let figure = self.get(id).ok_or_else(|| FigureError::UnknownFigure {
            figure: id.to_string(),
            known: self.ids().iter().map(|s| s.to_string()).collect(),
        })?;
        let missing = FigureRegistry::missing_columns(figure, report);
        if !missing.is_empty() {
            return Err(FigureError::MissingColumns {
                figure: id.to_string(),
                missing,
            });
        }
        figure.build(report)
    }

    fn outcome_of(figure: &dyn Figure, report: &SurveyReport) -> FigureOutcome {
        let missing = FigureRegistry::missing_columns(figure, report);
        if !missing.is_empty() {
            return FigureOutcome::Skipped {
                id: figure.id().to_string(),
                missing,
            };
        }
        match figure.build(report) {
            Ok(rendered) => FigureOutcome::Rendered(rendered),
            Err(error) => FigureOutcome::Failed {
                id: figure.id().to_string(),
                error,
            },
        }
    }

    /// Builds every registered figure against `report`, returning outcomes
    /// in registration order. Figures whose required columns are absent
    /// become [`FigureOutcome::Skipped`]; build failures become
    /// [`FigureOutcome::Failed`]. Never panics on schema mismatches.
    ///
    /// Figures are independent of each other (each reads only the shared
    /// report), so they build **in parallel** across available cores —
    /// heavyweight figures like the paper-scale CDFs no longer serialize
    /// behind each other. Work-stealing assigns figures to workers, but
    /// every outcome lands in its registration-order slot, so the result
    /// (and any sink fed from it) is identical to a sequential pass.
    pub fn build_all(&self, report: &SurveyReport) -> Vec<FigureOutcome> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.figures.len())
            .min(8);
        if threads <= 1 {
            return self
                .figures
                .iter()
                .map(|figure| FigureRegistry::outcome_of(figure.as_ref(), report))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut indexed: Vec<(usize, FigureOutcome)> = Vec::with_capacity(self.figures.len());
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let figures = &self.figures;
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= figures.len() {
                            break;
                        }
                        local.push((i, FigureRegistry::outcome_of(figures[i].as_ref(), report)));
                    }
                    local
                }));
            }
            for handle in handles {
                indexed.extend(handle.join().expect("figure build worker panicked"));
            }
        })
        .expect("crossbeam scope");
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, outcome)| outcome).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AnalysisWorld, Engine};
    use perils_core::universe::Universe;

    struct NeedsGhostColumn;

    impl Figure for NeedsGhostColumn {
        fn id(&self) -> &str {
            "ghost"
        }
        fn title(&self) -> &str {
            "Ghost"
        }
        fn required_columns(&self) -> &[&str] {
            &["no_such_column"]
        }
        fn build(&self, report: &SurveyReport) -> Result<RenderedFigure, FigureError> {
            let _ = report.try_counts("no_such_column")?;
            unreachable!("the registry must skip before building")
        }
    }

    fn empty_report() -> SurveyReport {
        Engine::with_builtin_metrics().run(AnalysisWorld::from_targets(Universe::default(), vec![]))
    }

    #[test]
    fn missing_columns_become_skips_not_panics() {
        let registry = FigureRegistry::new().register(NeedsGhostColumn);
        let outcomes = registry.build_all(&empty_report());
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0] {
            FigureOutcome::Skipped { id, missing } => {
                assert_eq!(id, "ghost");
                assert_eq!(missing, &["no_such_column".to_string()]);
            }
            other => panic!("expected skip, got {other:?}"),
        }
    }

    #[test]
    fn build_by_id_reports_unknown_and_missing() {
        let registry = FigureRegistry::new().register(NeedsGhostColumn);
        let report = empty_report();
        match registry.build("nope", &report) {
            Err(FigureError::UnknownFigure { figure, known }) => {
                assert_eq!(figure, "nope");
                assert_eq!(known, vec!["ghost".to_string()]);
            }
            other => panic!("expected unknown-figure error, got {other:?}"),
        }
        assert!(matches!(
            registry.build("ghost", &report),
            Err(FigureError::MissingColumns { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate figure id")]
    fn duplicate_figure_rejected() {
        let _ = FigureRegistry::new()
            .register(NeedsGhostColumn)
            .register(NeedsGhostColumn);
    }

    #[test]
    fn rendered_figure_emits_all_formats() {
        let mut data = Table::new(vec!["x", "y"]);
        data.row(vec!["1", "a\"b"]);
        let fig = RenderedFigure::new("t", "Title", "Title\nbody\n", data);
        assert_eq!(fig.emit(SinkFormat::Text), "Title\nbody\n");
        assert_eq!(fig.emit(SinkFormat::Csv), "x,y\n1,\"a\"\"b\"\n");
        assert_eq!(
            fig.emit(SinkFormat::Json),
            "{\"id\":\"t\",\"title\":\"Title\",\"columns\":[\"x\",\"y\"],\"rows\":[[\"1\",\"a\\\"b\"]]}"
        );
    }

    #[test]
    fn writer_sink_separates_figures() {
        let fig = RenderedFigure::new("a", "A", "A\n", Table::new(vec!["x"]));
        let mut buffer = Vec::new();
        {
            let mut sink = WriterSink::new(&mut buffer, SinkFormat::Text);
            sink.emit(&fig).unwrap();
            sink.emit(&fig).unwrap();
            sink.finish().unwrap();
        }
        assert_eq!(String::from_utf8(buffer).unwrap(), "A\n\nA\n\n");
    }

    #[test]
    fn directory_sink_creates_missing_directories() {
        let dir = std::env::temp_dir().join(format!("perils-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("deep/figures");
        let mut sink = DirectorySink::new(&nested, SinkFormat::Json);
        let fig = RenderedFigure::new("f", "F", "F\n", Table::new(vec!["x"]));
        sink.emit(&fig).unwrap();
        assert_eq!(sink.written().len(), 1);
        let content = std::fs::read_to_string(nested.join("f.json")).unwrap();
        assert!(content.starts_with("{\"id\":\"f\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_csv_sink_matches_buffered_bytes() {
        let dir = std::env::temp_dir().join(format!("perils-stream-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut data = Table::new(vec!["x", "y"]);
        data.row(vec!["1", "a\"b"]);
        data.row(vec!["2", "plain"]);
        let fig = RenderedFigure::new("s", "S", "S\n", data);

        let mut streaming = StreamingCsvSink::new(dir.join("stream"));
        streaming.emit(&fig).unwrap();
        streaming.finish().unwrap();
        let mut buffered = DirectorySink::new(dir.join("buffered"), SinkFormat::Csv);
        buffered.emit(&fig).unwrap();

        let a = std::fs::read(dir.join("stream/s.csv")).unwrap();
        let b = std::fs::read(dir.join("buffered/s.csv")).unwrap();
        assert_eq!(a, b, "streaming and buffered CSV must be byte-identical");
        assert_eq!(streaming.written().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_build_all_preserves_registration_order() {
        struct Named(&'static str);
        impl Figure for Named {
            fn id(&self) -> &str {
                self.0
            }
            fn title(&self) -> &str {
                self.0
            }
            fn required_columns(&self) -> &[&str] {
                &[]
            }
            fn build(&self, _report: &SurveyReport) -> Result<RenderedFigure, FigureError> {
                Ok(RenderedFigure::new(
                    self.0,
                    self.0,
                    format!("{}\n", self.0),
                    Table::new(vec!["x"]),
                ))
            }
        }
        let registry = FigureRegistry::new()
            .register(Named("a"))
            .register(Named("b"))
            .register(Named("c"))
            .register(Named("d"))
            .register(Named("e"));
        let report = empty_report();
        for _ in 0..4 {
            let ids: Vec<String> = registry
                .build_all(&report)
                .iter()
                .map(|o| {
                    assert!(matches!(o, FigureOutcome::Rendered(_)));
                    o.id().to_string()
                })
                .collect();
            assert_eq!(ids, ["a", "b", "c", "d", "e"]);
        }
    }

    #[test]
    fn sink_format_parsing() {
        assert_eq!(SinkFormat::parse("text"), Some(SinkFormat::Text));
        assert_eq!(SinkFormat::parse("csv"), Some(SinkFormat::Csv));
        assert_eq!(SinkFormat::parse("json"), Some(SinkFormat::Json));
        assert_eq!(SinkFormat::parse("gnuplot"), Some(SinkFormat::Gnuplot));
        assert_eq!(SinkFormat::parse("vega"), Some(SinkFormat::Vega));
        assert_eq!(SinkFormat::parse("yaml"), None);
        assert_eq!(SinkFormat::Text.extension(), "txt");
        assert_eq!(SinkFormat::Gnuplot.extension(), "gp");
        assert_eq!(SinkFormat::Vega.extension(), "vl.json");
    }

    #[test]
    fn vega_spec_is_valid_json_with_inline_numeric_data() {
        use perils_util::json::{parse, Value};
        let mut data = Table::new(vec!["size", "count", "share"]);
        data.row(vec!["1", "10", "0.5"]);
        data.row(vec!["2", "4", "0.2"]);
        let fig = RenderedFigure::new("dist", "Size \"dist\"", "t\n", data);
        let spec = parse(&fig.emit(SinkFormat::Vega)).expect("vega spec parses");
        assert_eq!(
            spec.get("$schema").and_then(Value::as_str),
            Some("https://vega.github.io/schema/vega-lite/v5.json")
        );
        assert_eq!(
            spec.get("title").and_then(Value::as_str),
            Some("Size \"dist\"")
        );
        assert_eq!(spec.get("name").and_then(Value::as_str), Some("dist"));
        let values = spec
            .get("data")
            .and_then(|d| d.get("values"))
            .and_then(Value::as_array)
            .expect("inline data values");
        assert_eq!(values.len(), 2);
        // Numeric cells become JSON numbers, not strings.
        assert_eq!(values[0].get("size").and_then(Value::as_f64), Some(1.0));
        assert_eq!(values[1].get("share").and_then(Value::as_f64), Some(0.2));
        // Three columns: folded multi-series line chart on quantitative x.
        assert_eq!(spec.get("mark").and_then(Value::as_str), Some("line"));
        let fold = spec
            .get("transform")
            .and_then(Value::as_array)
            .and_then(|t| t[0].get("fold"))
            .and_then(Value::as_array)
            .expect("fold transform");
        assert_eq!(fold.len(), 2);
        assert_eq!(fold[0].as_str(), Some("count"));
        let x = spec
            .get("encoding")
            .and_then(|e| e.get("x"))
            .expect("x encoding");
        assert_eq!(x.get("type").and_then(Value::as_str), Some("quantitative"));
    }

    #[test]
    fn vega_quotes_float_lookalikes_that_are_not_json_numbers() {
        use perils_util::json::{parse, Value};
        // Every one of these parses as f64 but is not a JSON number
        // token; spliced verbatim they would make the spec unparseable.
        let mut data = Table::new(vec!["label", "value"]);
        for cell in ["NaN", "inf", "-inf", "1.", ".5", "+2"] {
            data.row(vec!["row", cell]);
        }
        data.row(vec!["row", "2.5"]);
        let fig = RenderedFigure::new("odd", "Odd cells", "t\n", data);
        let spec = parse(&fig.vega()).expect("spec stays valid JSON");
        let values = spec
            .get("data")
            .and_then(|d| d.get("values"))
            .and_then(Value::as_array)
            .expect("inline data values");
        for (row, cell) in ["NaN", "inf", "-inf", "1.", ".5", "+2"].iter().enumerate() {
            assert_eq!(
                values[row].get("value").and_then(Value::as_str),
                Some(*cell),
                "{cell} must be emitted as a quoted string"
            );
        }
        // A real JSON number still comes through as a number.
        assert_eq!(values[6].get("value").and_then(Value::as_f64), Some(2.5));
    }

    #[test]
    fn vega_spec_switches_to_bars_for_categorical_x() {
        use perils_util::json::{parse, Value};
        let mut data = Table::new(vec!["tld", "zones"]);
        data.row(vec!["com", "120"]);
        data.row(vec!["net", "35"]);
        let fig = RenderedFigure::new("tlds", "Zones per TLD", "t\n", data);
        let spec = parse(&fig.vega()).expect("vega spec parses");
        assert_eq!(spec.get("mark").and_then(Value::as_str), Some("bar"));
        let encoding = spec.get("encoding").expect("encoding");
        let x = encoding.get("x").expect("x");
        assert_eq!(x.get("field").and_then(Value::as_str), Some("tld"));
        assert_eq!(x.get("type").and_then(Value::as_str), Some("ordinal"));
        assert_eq!(
            encoding
                .get("y")
                .and_then(|y| y.get("field"))
                .and_then(Value::as_str),
            Some("zones")
        );
        // Two columns: no fold transform.
        assert_eq!(spec.get("transform"), None);
        // Categorical cells stay strings.
        let values = spec
            .get("data")
            .and_then(|d| d.get("values"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(values[0].get("tld").and_then(Value::as_str), Some("com"));
        assert_eq!(values[0].get("zones").and_then(Value::as_f64), Some(120.0));
    }

    #[test]
    fn gnuplot_script_inlines_data_and_plots_numeric_x() {
        let mut data = Table::new(vec!["size", "count", "share"]);
        data.row(vec!["1", "10", "0.5"]);
        data.row(vec!["2", "4", "0.2"]);
        let fig = RenderedFigure::new("dist", "Size \"dist\"", "t\n", data);
        let gp = fig.emit(SinkFormat::Gnuplot);
        assert!(gp.starts_with("# Size \"dist\" (dist)\n$data << EOD\n"));
        assert!(gp.contains("size\tcount\tshare\n1\t10\t0.5\n2\t4\t0.2\nEOD\n"));
        assert!(gp.contains("set output \"dist.png\""));
        assert!(gp.contains("set title \"Size \\\"dist\\\"\""));
        assert!(gp.contains("plot for [i=2:3] $data using 1:i"));
    }

    #[test]
    fn gnuplot_script_uses_category_tics_for_text_x() {
        let mut data = Table::new(vec!["tld", "zones"]);
        data.row(vec!["com", "120"]);
        data.row(vec!["net", "35"]);
        let fig = RenderedFigure::new("tlds", "Zones per TLD", "t\n", data);
        let gp = fig.gnuplot();
        assert!(gp.contains("plot for [i=2:2] $data using i:xtic(1)"));
    }
}
