//! Lints a delegation universe and reports per-subject diagnostics with
//! evidence chains.
//!
//! ```text
//! cargo run --release -p perils-survey --bin lint -- \
//!     [--world fbi|cornell|tripwire|tiny] [--seed N] [--threads N]
//!     [--list-rules] [--allow RULE] [--warn RULE] [--deny RULE]
//!     [--format text|json|sarif] [--out FILE]
//! ```
//!
//! Severity overrides are repeatable and validated against the registry:
//! `--allow RULE` suppresses a rule's findings, `--warn`/`--deny` re-level
//! them (deny-level findings gate the exit code). Unknown rule ids are
//! usage errors (exit 2), matching the figures CLI error contract.
//!
//! Exit codes: **0** — clean or warnings only; **1** — at least one
//! deny-level finding (the CI gate); **2** — usage error (unknown flag,
//! malformed value, unknown rule id).

use perils_authserver::scenarios::{
    cornell_figure1, fbi_case, lint_tripwire, lint_tripwire_targets,
};
use perils_core::lint::{RuleRegistry, Severity, SeverityOverrides};
use perils_core::universe::Universe;
use perils_core::{DependencyIndex, LintIndex};
use perils_dns::name::{name, DnsName};
use perils_survey::driver::SurveyConfig;
use perils_survey::engine::{SyntheticSource, WorldSource};
use perils_survey::lint::{run_lint, run_lint_with, LintFormat};
use perils_survey::scenario::universe_from_scenario;
use perils_survey::topology::SurveyName;
use std::num::NonZeroUsize;

const USAGE: &str = "usage: lint [--world fbi|cornell|tripwire|tiny] [--seed N] [--threads N]
            [--list-rules] [--allow RULE] [--warn RULE] [--deny RULE]
            [--format text|json|sarif] [--out FILE]
            [--load-snapshot PATH] [--save-snapshot PATH]

  --world WORLD   universe to lint: the fbi.gov case study (default), the
                  Figure 1 cornell web, the all-pathologies tripwire
                  fixture, or a seeded tiny synthetic survey
  --seed N        synthetic seed (tiny world only; default 20040722)
  --threads N     worker threads (default: available parallelism, max 16);
                  output is byte-identical for every choice
  --list-rules    print the rule registry (id, default severity,
                  description) and exit
  --allow RULE    suppress RULE's findings          (repeatable)
  --warn RULE     report RULE's findings as warnings (repeatable)
  --deny RULE     report RULE's findings as errors   (repeatable)
  --format FMT    text (rustc-style, default) | json | sarif (2.1.0)
  --out FILE      write the report to FILE instead of stdout
  --load-snapshot PATH  lint the world in a .psa archive (its stored
                        index and facts are reused, no rebuild);
                        conflicts with --world/--seed (usage error)
  --save-snapshot PATH  write the linted world (with its index and
                        facts) to a .psa archive after the run

exit codes: 0 = clean or warnings only; 1 = deny-level findings present;
            2 = usage error (unknown flag, value, or rule id)";

/// Prints a usage error and exits with status 2 (never panics on bad
/// arguments).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    world: String,
    seed: u64,
    threads: Option<NonZeroUsize>,
    list_rules: bool,
    overrides: Vec<(String, Severity)>,
    format: LintFormat,
    out: Option<String>,
    load_snapshot: Option<String>,
    save_snapshot: Option<String>,
    /// World-shaping flags the user spelled out (for `--load-snapshot`
    /// conflict detection — a stored world cannot be reshaped).
    world_flags_given: Vec<&'static str>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        world: "fbi".to_string(),
        seed: 20040722, // 2004-07-22, the paper's crawl date
        threads: None,
        list_rules: false,
        overrides: Vec::new(),
        format: LintFormat::Text,
        out: None,
        load_snapshot: None,
        save_snapshot: None,
        world_flags_given: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--world" => {
                parsed.world = args
                    .next()
                    .unwrap_or_else(|| usage_error("--world needs a value"));
                parsed.world_flags_given.push("--world");
            }
            "--seed" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
                parsed.seed = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("malformed --seed {raw:?}")));
                parsed.world_flags_given.push("--seed");
            }
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--threads needs an integer"));
                parsed.threads = Some(
                    raw.parse()
                        .unwrap_or_else(|_| usage_error(&format!("malformed --threads {raw:?}"))),
                );
            }
            "--list-rules" => parsed.list_rules = true,
            "--allow" | "--warn" | "--deny" => {
                let severity = Severity::parse(&arg[2..]).expect("flag names are labels");
                let rule = args
                    .next()
                    .unwrap_or_else(|| usage_error(&format!("{arg} needs a rule id")));
                parsed.overrides.push((rule, severity));
            }
            "--format" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs text|json|sarif"));
                parsed.format = LintFormat::parse(&raw)
                    .unwrap_or_else(|| usage_error(&format!("unknown format {raw:?}")));
            }
            "--out" => parsed.out = args.next().or_else(|| usage_error("--out needs FILE")),
            "--load-snapshot" => {
                parsed.load_snapshot = args
                    .next()
                    .or_else(|| usage_error("--load-snapshot needs PATH"));
            }
            "--save-snapshot" => {
                parsed.save_snapshot = args
                    .next()
                    .or_else(|| usage_error("--save-snapshot needs PATH"));
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if parsed.load_snapshot.is_some() && !parsed.world_flags_given.is_empty() {
        usage_error(&format!(
            "--load-snapshot conflicts with {}: a stored world cannot be reshaped",
            parsed.world_flags_given.join("/")
        ));
    }
    parsed
}

/// Wraps bare scenario targets as [`SurveyName`]s (tld = last label,
/// rank = position) so any world can be written to a `.psa` archive.
fn survey_names(targets: Vec<DnsName>) -> Vec<SurveyName> {
    targets
        .into_iter()
        .enumerate()
        .map(|(i, target)| {
            let tld = DnsName::from_labels(target.labels().last().cloned().into_iter().collect())
                .expect("a single label always fits");
            SurveyName {
                name: target,
                tld,
                popularity_rank: i,
            }
        })
        .collect()
}

/// Resolves `--world` into a universe, its survey targets, and the
/// popular-subset indices (empty for scenario worlds).
fn load_world(world: &str, seed: u64) -> (Universe, Vec<SurveyName>, Vec<usize>) {
    match world {
        "fbi" => (
            universe_from_scenario(&fbi_case()),
            survey_names(vec![
                name("www.fbi.gov"),
                name("www.sprintip.com"),
                name("www.telemail.net"),
            ]),
            Vec::new(),
        ),
        "cornell" => (
            universe_from_scenario(&cornell_figure1()),
            survey_names(vec![name("www.cs.cornell.edu"), name("www.cornell.edu")]),
            Vec::new(),
        ),
        "tripwire" => (
            universe_from_scenario(&lint_tripwire()),
            survey_names(lint_tripwire_targets()),
            Vec::new(),
        ),
        "tiny" => {
            let config = SurveyConfig::tiny(seed);
            let world = SyntheticSource {
                params: config.params,
            }
            .load();
            (world.universe, world.names, world.top500)
        }
        other => usage_error(&format!(
            "unknown world {other:?} (fbi|cornell|tripwire|tiny)"
        )),
    }
}

fn print_rule_list(registry: &RuleRegistry) {
    let mut table = perils_util::table::Table::new(vec!["rule", "default", "description"]);
    for rule in registry.iter() {
        table.row(vec![
            rule.id().to_string(),
            rule.default_severity().label().to_string(),
            rule.describe().to_string(),
        ]);
    }
    print!("{}", table.render());
}

fn main() {
    let args = parse_args();
    let registry = RuleRegistry::builtin();

    if args.list_rules {
        print_rule_list(&registry);
        return;
    }

    // Validate severity overrides up front: unknown rule ids are typed
    // errors surfaced as usage errors, not panics.
    let mut overrides = SeverityOverrides::new();
    for (rule, severity) in &args.overrides {
        if let Err(error) = overrides.set(&registry, rule, *severity) {
            usage_error(&error.to_string());
        }
    }

    let (universe, names, top500, preloaded) = match &args.load_snapshot {
        Some(path) => {
            let loaded = perils_survey::load_world(path).unwrap_or_else(|e| {
                eprintln!("error: cannot load snapshot {path}: {e}");
                std::process::exit(1);
            });
            (
                loaded.universe,
                loaded.names.into_vec(),
                loaded.top500,
                Some((loaded.index, loaded.lint)),
            )
        }
        None => {
            let (universe, names, top500) = load_world(&args.world, args.seed);
            (universe, names, top500, None)
        }
    };
    let targets: Vec<DnsName> = names.iter().map(|n| n.name.clone()).collect();
    let described = args
        .load_snapshot
        .as_deref()
        .map(|path| format!("snapshot {path}"))
        .unwrap_or_else(|| format!("{:?}", args.world));
    eprintln!(
        "linting world {described}: {} zones, {} servers, {} target names...",
        universe.zone_count(),
        universe.server_count(),
        targets.len(),
    );
    let report = match &preloaded {
        Some((index, facts)) => run_lint_with(
            &universe,
            &targets,
            &registry,
            &overrides,
            args.threads,
            index,
            facts,
        ),
        None => run_lint(&universe, &targets, &registry, &overrides, args.threads),
    };
    eprintln!(
        "{} finding(s): {} deny, {} warn",
        report.diagnostics.len(),
        report.count(Severity::Deny),
        report.count(Severity::Warn),
    );

    if let Some(path) = &args.save_snapshot {
        let (index, facts) = match preloaded {
            Some(pair) => pair,
            None => (
                DependencyIndex::build(&universe),
                LintIndex::build(&universe),
            ),
        };
        match perils_survey::save_world(path, &universe, &index, &facts, &names, &top500, None) {
            Ok(bytes) => eprintln!("snapshot saved to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("error: cannot save snapshot to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let rendered = report.emit(args.format);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path:?} failed: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }

    if report.has_deny() {
        std::process::exit(1);
    }
}
