//! Lints a delegation universe and reports per-subject diagnostics with
//! evidence chains.
//!
//! ```text
//! cargo run --release -p perils-survey --bin lint -- \
//!     [--world fbi|cornell|tripwire|tiny] [--seed N] [--threads N]
//!     [--list-rules] [--allow RULE] [--warn RULE] [--deny RULE]
//!     [--format text|json|sarif] [--out FILE]
//! ```
//!
//! Severity overrides are repeatable and validated against the registry:
//! `--allow RULE` suppresses a rule's findings, `--warn`/`--deny` re-level
//! them (deny-level findings gate the exit code). Unknown rule ids are
//! usage errors (exit 2), matching the figures CLI error contract.
//!
//! Exit codes: **0** — clean or warnings only; **1** — at least one
//! deny-level finding (the CI gate); **2** — usage error (unknown flag,
//! malformed value, unknown rule id).

use perils_authserver::scenarios::{
    cornell_figure1, fbi_case, lint_tripwire, lint_tripwire_targets,
};
use perils_core::lint::{RuleRegistry, Severity, SeverityOverrides};
use perils_core::universe::Universe;
use perils_dns::name::{name, DnsName};
use perils_survey::driver::SurveyConfig;
use perils_survey::engine::{SyntheticSource, WorldSource};
use perils_survey::lint::{run_lint, LintFormat};
use perils_survey::scenario::universe_from_scenario;
use std::num::NonZeroUsize;

const USAGE: &str = "usage: lint [--world fbi|cornell|tripwire|tiny] [--seed N] [--threads N]
            [--list-rules] [--allow RULE] [--warn RULE] [--deny RULE]
            [--format text|json|sarif] [--out FILE]

  --world WORLD   universe to lint: the fbi.gov case study (default), the
                  Figure 1 cornell web, the all-pathologies tripwire
                  fixture, or a seeded tiny synthetic survey
  --seed N        synthetic seed (tiny world only; default 20040722)
  --threads N     worker threads (default: available parallelism, max 16);
                  output is byte-identical for every choice
  --list-rules    print the rule registry (id, default severity,
                  description) and exit
  --allow RULE    suppress RULE's findings          (repeatable)
  --warn RULE     report RULE's findings as warnings (repeatable)
  --deny RULE     report RULE's findings as errors   (repeatable)
  --format FMT    text (rustc-style, default) | json | sarif (2.1.0)
  --out FILE      write the report to FILE instead of stdout

exit codes: 0 = clean or warnings only; 1 = deny-level findings present;
            2 = usage error (unknown flag, value, or rule id)";

/// Prints a usage error and exits with status 2 (never panics on bad
/// arguments).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    world: String,
    seed: u64,
    threads: Option<NonZeroUsize>,
    list_rules: bool,
    overrides: Vec<(String, Severity)>,
    format: LintFormat,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        world: "fbi".to_string(),
        seed: 20040722, // 2004-07-22, the paper's crawl date
        threads: None,
        list_rules: false,
        overrides: Vec::new(),
        format: LintFormat::Text,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--world" => {
                parsed.world = args
                    .next()
                    .unwrap_or_else(|| usage_error("--world needs a value"));
            }
            "--seed" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
                parsed.seed = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("malformed --seed {raw:?}")));
            }
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--threads needs an integer"));
                parsed.threads = Some(
                    raw.parse()
                        .unwrap_or_else(|_| usage_error(&format!("malformed --threads {raw:?}"))),
                );
            }
            "--list-rules" => parsed.list_rules = true,
            "--allow" | "--warn" | "--deny" => {
                let severity = Severity::parse(&arg[2..]).expect("flag names are labels");
                let rule = args
                    .next()
                    .unwrap_or_else(|| usage_error(&format!("{arg} needs a rule id")));
                parsed.overrides.push((rule, severity));
            }
            "--format" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs text|json|sarif"));
                parsed.format = LintFormat::parse(&raw)
                    .unwrap_or_else(|| usage_error(&format!("unknown format {raw:?}")));
            }
            "--out" => parsed.out = args.next().or_else(|| usage_error("--out needs FILE")),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    parsed
}

/// Resolves `--world` into a universe and its survey targets.
fn load_world(world: &str, seed: u64) -> (Universe, Vec<DnsName>) {
    match world {
        "fbi" => (
            universe_from_scenario(&fbi_case()),
            vec![
                name("www.fbi.gov"),
                name("www.sprintip.com"),
                name("www.telemail.net"),
            ],
        ),
        "cornell" => (
            universe_from_scenario(&cornell_figure1()),
            vec![name("www.cs.cornell.edu"), name("www.cornell.edu")],
        ),
        "tripwire" => (
            universe_from_scenario(&lint_tripwire()),
            lint_tripwire_targets(),
        ),
        "tiny" => {
            let config = SurveyConfig::tiny(seed);
            let world = SyntheticSource {
                params: config.params,
            }
            .load();
            let names = world.names.into_iter().map(|n| n.name).collect();
            (world.universe, names)
        }
        other => usage_error(&format!(
            "unknown world {other:?} (fbi|cornell|tripwire|tiny)"
        )),
    }
}

fn print_rule_list(registry: &RuleRegistry) {
    let mut table = perils_util::table::Table::new(vec!["rule", "default", "description"]);
    for rule in registry.iter() {
        table.row(vec![
            rule.id().to_string(),
            rule.default_severity().label().to_string(),
            rule.describe().to_string(),
        ]);
    }
    print!("{}", table.render());
}

fn main() {
    let args = parse_args();
    let registry = RuleRegistry::builtin();

    if args.list_rules {
        print_rule_list(&registry);
        return;
    }

    // Validate severity overrides up front: unknown rule ids are typed
    // errors surfaced as usage errors, not panics.
    let mut overrides = SeverityOverrides::new();
    for (rule, severity) in &args.overrides {
        if let Err(error) = overrides.set(&registry, rule, *severity) {
            usage_error(&error.to_string());
        }
    }

    let (universe, targets) = load_world(&args.world, args.seed);
    eprintln!(
        "linting world {:?}: {} zones, {} servers, {} target names...",
        args.world,
        universe.zone_count(),
        universe.server_count(),
        targets.len(),
    );
    let report = run_lint(&universe, &targets, &registry, &overrides, args.threads);
    eprintln!(
        "{} finding(s): {} deny, {} warn",
        report.diagnostics.len(),
        report.count(Severity::Deny),
        report.count(Severity::Warn),
    );

    let rendered = report.emit(args.format);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path:?} failed: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }

    if report.has_deny() {
        std::process::exit(1);
    }
}
