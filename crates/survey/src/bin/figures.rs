//! Regenerates every figure of the paper from a seeded synthetic survey,
//! running the full extended metric set through the analysis engine.
//!
//! ```text
//! cargo run --release -p perils-survey --bin figures [-- --scale tiny|default|paper]
//!                                                    [--seed N] [--csv DIR]
//! ```
//!
//! Prints each figure as an aligned text table (the EXPERIMENTS.md data
//! source) and, with `--csv`, writes one CSV per figure for external
//! plotting.

use perils_core::metric::columns;
use perils_core::misconfig::{
    FLAG_DEEP_DEPENDENCY, FLAG_SINGLE_OPERATOR, FLAG_SINGLE_SERVER, FLAG_UNRESOLVABLE_NS,
};
use perils_survey::driver::SurveyConfig;
use perils_survey::engine::{Engine, SyntheticSource};
use perils_survey::figures;
use std::io::Write;

fn main() {
    let mut scale = "default".to_string();
    let mut seed = 20040722u64; // 2004-07-22, the paper's crawl date
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| "default".into()),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"))
            }
            "--csv" => csv_dir = args.next(),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: figures [--scale tiny|default|paper] [--seed N] [--csv DIR]");
                std::process::exit(2);
            }
        }
    }
    let config = match scale.as_str() {
        "tiny" => SurveyConfig::tiny(seed),
        "default" => SurveyConfig::default_scaled(seed),
        "paper" => SurveyConfig::paper(seed),
        other => {
            eprintln!("unknown scale {other:?} (tiny|default|paper)");
            std::process::exit(2);
        }
    };

    // The extended engine: the six classic measurements plus the
    // misconfiguration and DNSSEC-coverage metrics, one sharded pass.
    let engine = Engine::with_extended_metrics()
        .threads(config.threads)
        .exact_hijack_sample(config.exact_hijack_sample);
    let source = SyntheticSource {
        params: config.params.clone(),
    };
    eprintln!(
        "running metrics {:?} over {} (scale={scale})...",
        engine.metric_ids(),
        perils_survey::engine::WorldSource::describe(&source),
    );
    let started = std::time::Instant::now();
    let report = engine.run(source);
    eprintln!(
        "survey complete in {:.1}s: {} names, {} zones, {} servers",
        started.elapsed().as_secs_f64(),
        report.world.names.len(),
        report.world.universe.zone_count(),
        report.world.universe.server_count(),
    );

    let f2 = figures::fig2(&report);
    let f3 = figures::fig3(&report);
    let f4 = figures::fig4(&report);
    let f5 = figures::fig5(&report);
    let f6 = figures::fig6(&report);
    let f7 = figures::fig7(&report);
    let f8 = figures::fig8(&report);
    let f9 = figures::fig9(&report);
    let headline = figures::headline(&report);

    println!("{}", headline.render());
    println!("{}", f2.render());
    println!("{}", f3.render());
    println!("{}", f4.render());
    println!("{}", f5.render());
    println!("{}", f6.render());
    println!("{}", f7.render());
    println!(
        "{}",
        f8.render("Figure 8 — Number of names controlled by nameservers")
    );
    println!(
        "{}",
        f9.render("Figure 9 — Names controlled by .edu and .org nameservers")
    );
    println!(
        "Name-control concentration (Gini over non-zero servers): {:.3}  (§3.3: \"disproportionate\")\n",
        report.value().gini()
    );

    // Exact-vs-flattened ablation summary over the sampled names.
    if !report.exact_sample.is_empty() {
        let mut agree = 0usize;
        let mut exact_smaller = 0usize;
        for &(i, exact_size, _) in &report.exact_sample {
            if report.cut_size()[i] == exact_size {
                agree += 1;
            } else if exact_size < report.cut_size()[i] {
                exact_smaller += 1;
            }
        }
        println!(
            "Ablation (exact AND/OR vs flattened min-cut, {} sampled names): agree {}, exact smaller {}\n",
            report.exact_sample.len(),
            agree,
            exact_smaller
        );
    }

    // Extension metrics, straight out of the engine's columnar report.
    {
        let n = report.world.names.len().max(1);
        let flags = report.counts(columns::MISCONFIG_FLAGS);
        let depth = report.counts(columns::MISCONFIG_DEPTH);
        let count_flag = |bit: usize| flags.iter().filter(|&&f| f & bit != 0).count();
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        println!(
            "Misconfiguration metric (Pappas et al. checks, per surveyed name):\n               single-server zone {} | single-operator redundancy {} | unresolvable NS {} |\n               deep glueless nesting {} (max observed depth {max_depth})\n",
            count_flag(FLAG_SINGLE_SERVER),
            count_flag(FLAG_SINGLE_OPERATOR),
            count_flag(FLAG_UNRESOLVABLE_NS),
            count_flag(FLAG_DEEP_DEPENDENCY),
        );

        let fraction = report.floats(columns::DNSSEC_SIGNED_FRACTION);
        let protected = report.counts(columns::DNSSEC_CHAIN_PROTECTED);
        let mean_fraction = fraction.iter().sum::<f64>() / n as f64;
        println!(
            "DNSSEC coverage metric (root+TLD \"islands of security\" rollout):\n               mean signed fraction of TCB zones {:.1}% | chain-protected names {} of {}\n               (§5: signing shrinks the forgeable surface; the closure — the deniable surface — is unchanged)\n",
            100.0 * mean_fraction,
            protected.iter().filter(|&&p| p > 0).count(),
            report.world.names.len(),
        );
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let write = |file: &str, content: String| {
            let path = format!("{dir}/{file}");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(content.as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        };
        write("fig2_tcb_cdf.csv", f2.to_csv());
        write("fig3_gtld.csv", f3.to_csv());
        write("fig4_cctld.csv", f4.to_csv());
        write("fig5_vulnerable_cdf.csv", f5.to_csv());
        write("fig6_safety.csv", f6.to_csv());
        write("fig7_bottlenecks.csv", f7.to_csv());
        write("fig8_value.csv", f8.to_csv());
        write("fig9_edu_org.csv", f9.to_csv());
    }
}
