//! Regenerates every figure of the paper from a seeded synthetic survey.
//!
//! ```text
//! cargo run --release -p perils-survey --bin figures [-- --scale tiny|default|paper]
//!                                                    [--seed N] [--csv DIR]
//! ```
//!
//! Prints each figure as an aligned text table (the EXPERIMENTS.md data
//! source) and, with `--csv`, writes one CSV per figure for external
//! plotting.

use perils_survey::driver::{run_survey, SurveyConfig};
use perils_survey::figures;
use std::io::Write;

fn main() {
    let mut scale = "default".to_string();
    let mut seed = 2004_07_22u64;
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| "default".into()),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"))
            }
            "--csv" => csv_dir = args.next(),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: figures [--scale tiny|default|paper] [--seed N] [--csv DIR]");
                std::process::exit(2);
            }
        }
    }
    let config = match scale.as_str() {
        "tiny" => SurveyConfig::tiny(seed),
        "default" => SurveyConfig::default_scaled(seed),
        "paper" => SurveyConfig::paper(seed),
        other => {
            eprintln!("unknown scale {other:?} (tiny|default|paper)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "generating universe and running survey (scale={scale}, seed={seed}, names={})...",
        config.params.names
    );
    let started = std::time::Instant::now();
    let report = run_survey(&config);
    eprintln!(
        "survey complete in {:.1}s: {} names, {} zones, {} servers",
        started.elapsed().as_secs_f64(),
        report.world.names.len(),
        report.world.universe.zone_count(),
        report.world.universe.server_count(),
    );

    let f2 = figures::fig2(&report);
    let f3 = figures::fig3(&report);
    let f4 = figures::fig4(&report);
    let f5 = figures::fig5(&report);
    let f6 = figures::fig6(&report);
    let f7 = figures::fig7(&report);
    let f8 = figures::fig8(&report);
    let f9 = figures::fig9(&report);
    let headline = figures::headline(&report);

    println!("{}", headline.render());
    println!("{}", f2.render());
    println!("{}", f3.render());
    println!("{}", f4.render());
    println!("{}", f5.render());
    println!("{}", f6.render());
    println!("{}", f7.render());
    println!("{}", f8.render("Figure 8 — Number of names controlled by nameservers"));
    println!("{}", f9.render("Figure 9 — Names controlled by .edu and .org nameservers"));
    println!(
        "Name-control concentration (Gini over non-zero servers): {:.3}  (§3.3: \"disproportionate\")\n",
        report.value.gini()
    );

    // Exact-vs-flattened ablation summary over the sampled names.
    if !report.exact_sample.is_empty() {
        let mut agree = 0usize;
        let mut exact_smaller = 0usize;
        for &(i, exact_size, _) in &report.exact_sample {
            if report.cut_size[i] == exact_size {
                agree += 1;
            } else if exact_size < report.cut_size[i] {
                exact_smaller += 1;
            }
        }
        println!(
            "Ablation (exact AND/OR vs flattened min-cut, {} sampled names): agree {}, exact smaller {}\n",
            report.exact_sample.len(),
            agree,
            exact_smaller
        );
    }

    // Extensions: §5 DNSSEC argument + configuration audit.
    {
        use perils_core::closure::DependencyIndex;
        use perils_core::dnssec::{dnssec_impact, DnssecDeployment};
        use perils_core::misconfig::audit_zones;
        let universe = &report.world.universe;
        let index = DependencyIndex::build(universe);
        let owned: std::collections::BTreeSet<_> = universe
            .server_ids()
            .filter(|&s| {
                let e = universe.server(s);
                e.scripted_exploit && !e.is_root
            })
            .collect();
        let sample: Vec<_> =
            report.world.names.iter().take(2000).map(|n| n.name.clone()).collect();
        let unsigned =
            dnssec_impact(universe, &index, &DnssecDeployment::none(), &sample, &owned);
        let signed = dnssec_impact(
            universe,
            &index,
            &DnssecDeployment::universal(universe),
            &sample,
            &owned,
        );
        println!(
            "DNSSEC (§5, attacker = all scripted-vulnerable servers, {} sampled names):\n               unsigned world: {} forgeable, {} deniable\n               universal DNSSEC: {} forgeable, {} deniable  — integrity protected, availability not\n",
            unsigned.names, unsigned.forgeable, unsigned.deniable, signed.forgeable, signed.deniable
        );
        let audit = audit_zones(universe);
        use perils_core::misconfig::Finding;
        println!(
            "Configuration audit (Pappas et al. checks over {} zones): single-server {} |              single-operator redundancy {} | unresolvable NS {} | unbootstrappable {}\n",
            universe.zone_count(),
            audit.count_of(|f| matches!(f, Finding::SingleServer { .. })),
            audit.count_of(|f| matches!(f, Finding::SingleOperator { .. })),
            audit.count_of(|f| matches!(f, Finding::UnresolvableNs { .. })),
            audit.count_of(|f| matches!(f, Finding::Unbootstrappable { .. })),
        );
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let write = |file: &str, content: String| {
            let path = format!("{dir}/{file}");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(content.as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        };
        write("fig2_tcb_cdf.csv", f2.to_csv());
        write("fig3_gtld.csv", f3.to_csv());
        write("fig4_cctld.csv", f4.to_csv());
        write("fig5_vulnerable_cdf.csv", f5.to_csv());
        write("fig6_safety.csv", f6.to_csv());
        write("fig7_bottlenecks.csv", f7.to_csv());
        write("fig8_value.csv", f8.to_csv());
        write("fig9_edu_org.csv", f9.to_csv());
    }
}
