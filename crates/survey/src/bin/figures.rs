//! Regenerates the paper's figures from a seeded synthetic survey through
//! the figure registry.
//!
//! ```text
//! cargo run --release -p perils-survey --bin figures -- \
//!     [--scale tiny|default|paper] [--seed N] [--list] [--only ID[,ID...]]
//!     [--format text|csv|json|gnuplot|vega] [--out DIR] [--csv DIR]
//! ```
//!
//! The CLI is registry-driven: it registers metrics on the engine and
//! figures on the [`FigureRegistry`], then renders whatever the registry
//! produces — figures whose metrics are absent are reported as skipped,
//! and a custom metric+figure pair plugs in without touching any
//! per-figure code here (the zombie-delegation workload below is exactly
//! that). `--list` prints the registered figures with their required
//! columns; `--only` selects a subset; `--format`/`--out` choose the
//! serialization and destination (`--csv DIR` is the legacy flag for an
//! additional CSV directory sink). Note for `--csv` users: files are now
//! named by figure id (`fig2.csv`, `headline.csv`, …) instead of the old
//! per-figure names (`fig2_tcb_cdf.csv`, …), since the registry owns the
//! naming (also stated in `--help`, where it was never documented before).
//! Without `--out`, figures stream to stdout; the aligned-text stream is
//! the EXPERIMENTS.md data source.
//!
//! Ingestion is streaming end to end: the synthetic source plans the
//! world and feeds it to the engine as incremental universe events (the
//! default `WorldSource` path since the streaming-ingestion refactor),
//! and CSV directory exports go through the row-at-a-time
//! `StreamingCsvSink`.

use perils_core::ZombieDelegationMetric;
use perils_survey::driver::SurveyConfig;
use perils_survey::engine::{Engine, SurveyReport, SyntheticSource};
use perils_survey::figures::ZombieFigure;
use perils_survey::render::{
    DirectorySink, FigureOutcome, FigureRegistry, ReportSink, SinkFormat, StreamingCsvSink,
    WriterSink,
};

const USAGE: &str = "usage: figures [--scale tiny|default|paper] [--seed N] [--list]
               [--only ID[,ID...]] [--format text|csv|json|gnuplot|vega] [--out DIR] [--csv DIR]
               [--load-snapshot PATH] [--save-snapshot PATH]

  --out DIR     one <figure-id>.<ext> file per figure (ext from --format)
  --csv DIR     extra CSV sink (streaming, row-at-a-time); files are named
                by figure id: fig2.csv, headline.csv, ... (since the
                registry owns naming, NOT the legacy fig2_tcb_cdf.csv)
  --load-snapshot PATH  analyze the world in a .psa archive instead of
                        generating one (conflicts with --scale/--seed:
                        giving both is a usage error, exit 2; figures are
                        recomputed, not replayed)
  --save-snapshot PATH  after the run, write the world to a .psa archive
                        for later --load-snapshot / perilsd --snapshot";

/// Prints a usage error and exits with status 2 (never panics on bad
/// arguments).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    scale: String,
    seed: u64,
    list: bool,
    only: Option<Vec<String>>,
    format: SinkFormat,
    out_dir: Option<String>,
    legacy_csv_dir: Option<String>,
    load_snapshot: Option<String>,
    save_snapshot: Option<String>,
    /// World-shaping flags the user spelled out (for `--load-snapshot`
    /// conflict detection — a stored world has no scale or seed to shape).
    world_flags_given: Vec<&'static str>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scale: "default".to_string(),
        seed: 20040722, // 2004-07-22, the paper's crawl date
        list: false,
        only: None,
        format: SinkFormat::Text,
        out_dir: None,
        legacy_csv_dir: None,
        load_snapshot: None,
        save_snapshot: None,
        world_flags_given: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                parsed.scale = args
                    .next()
                    .unwrap_or_else(|| usage_error("--scale needs a value"));
                parsed.world_flags_given.push("--scale");
            }
            "--seed" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
                parsed.seed = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("malformed --seed {raw:?}")));
                parsed.world_flags_given.push("--seed");
            }
            "--list" => parsed.list = true,
            "--only" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--only needs a comma-separated id list"));
                parsed.only = Some(
                    raw.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--format" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs text|csv|json|gnuplot|vega"));
                parsed.format = SinkFormat::parse(&raw)
                    .unwrap_or_else(|| usage_error(&format!("unknown format {raw:?}")));
            }
            "--out" => parsed.out_dir = args.next().or_else(|| usage_error("--out needs DIR")),
            "--csv" => {
                parsed.legacy_csv_dir = args.next().or_else(|| usage_error("--csv needs DIR"));
            }
            "--load-snapshot" => {
                parsed.load_snapshot = args
                    .next()
                    .or_else(|| usage_error("--load-snapshot needs PATH"));
            }
            "--save-snapshot" => {
                parsed.save_snapshot = args
                    .next()
                    .or_else(|| usage_error("--save-snapshot needs PATH"));
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if parsed.load_snapshot.is_some() && !parsed.world_flags_given.is_empty() {
        usage_error(&format!(
            "--load-snapshot conflicts with {}: a stored world has no scale or seed to shape",
            parsed.world_flags_given.join("/")
        ));
    }
    parsed
}

/// Everything registered for this binary: the extended metric set plus the
/// zombie-delegation workload, figures matching.
fn registry() -> FigureRegistry {
    FigureRegistry::extended().register(ZombieFigure)
}

fn engine(config: &SurveyConfig) -> Engine {
    Engine::with_extended_metrics()
        .register(ZombieDelegationMetric)
        .threads(config.threads)
        .exact_hijack_sample(config.exact_hijack_sample)
}

fn print_figure_list(registry: &FigureRegistry) {
    let mut table = perils_util::table::Table::new(vec!["id", "required columns", "title"]);
    for figure in registry.iter() {
        table.row(vec![
            figure.id().to_string(),
            figure.required_columns().join(","),
            figure.title().to_string(),
        ]);
    }
    print!("{}", table.render());
}

/// Extra diagnostics that are not figures (printed only on the text
/// stdout stream): value concentration and the exact-hijack ablation.
fn print_extras(report: &SurveyReport) {
    println!(
        "Name-control concentration (Gini over non-zero servers): {:.3}  (§3.3: \"disproportionate\")\n",
        report.value().gini()
    );
    if !report.exact_sample.is_empty() {
        let mut agree = 0usize;
        let mut exact_smaller = 0usize;
        for &(i, exact_size, _) in &report.exact_sample {
            if report.cut_size()[i] == exact_size {
                agree += 1;
            } else if exact_size < report.cut_size()[i] {
                exact_smaller += 1;
            }
        }
        println!(
            "Ablation (exact AND/OR vs flattened min-cut, {} sampled names): agree {}, exact smaller {}\n",
            report.exact_sample.len(),
            agree,
            exact_smaller
        );
    }
}

fn main() {
    let args = parse_args();
    let registry = registry();

    if args.list {
        print_figure_list(&registry);
        return;
    }

    if let Some(only) = &args.only {
        let known = registry.ids();
        for id in only {
            if !known.contains(&id.as_str()) {
                usage_error(&format!("unknown figure {id:?}; registered: {known:?}"));
            }
        }
    }

    let config = match args.scale.as_str() {
        "tiny" => SurveyConfig::tiny(args.seed),
        "default" => SurveyConfig::default_scaled(args.seed),
        "paper" => SurveyConfig::paper(args.seed),
        other => usage_error(&format!("unknown scale {other:?} (tiny|default|paper)")),
    };

    let engine = engine(&config);
    let started = std::time::Instant::now();
    let report = match &args.load_snapshot {
        Some(path) => {
            eprintln!(
                "running metrics {:?} over snapshot {path} ...",
                engine.metric_ids()
            );
            let loaded = perils_survey::load_world(path).unwrap_or_else(|e| {
                eprintln!("error: cannot load snapshot {path}: {e}");
                std::process::exit(1);
            });
            let world = perils_survey::AnalysisWorld {
                universe: loaded.universe,
                names: loaded.names.into_vec(),
                top500: loaded.top500,
            };
            engine.run_world_indexed(world, &loaded.index)
        }
        None => {
            let source = SyntheticSource {
                params: config.params.clone(),
            };
            eprintln!(
                "running metrics {:?} over {} (scale={})...",
                engine.metric_ids(),
                perils_survey::engine::WorldSource::describe(&source),
                args.scale,
            );
            engine.run(source)
        }
    };
    eprintln!(
        "survey complete in {:.1}s: {} names, {} zones, {} servers{}",
        started.elapsed().as_secs_f64(),
        report.world.names.len(),
        report.world.universe.zone_count(),
        report.world.universe.server_count(),
        perils_util::peak_rss_mb()
            .map(|mb| format!(", peak RSS {mb:.0} MiB"))
            .unwrap_or_default(),
    );

    if let Some(path) = &args.save_snapshot {
        let index = perils_core::DependencyIndex::build(&report.world.universe);
        let lint = perils_core::LintIndex::build(&report.world.universe);
        match perils_survey::save_world(
            path,
            &report.world.universe,
            &index,
            &lint,
            &report.world.names,
            &report.world.top500,
            None,
        ) {
            Ok(bytes) => eprintln!("snapshot saved to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("error: cannot save snapshot to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Build every selected figure through the registry. Missing columns are
    // skips (reported on stderr), not panics.
    let outcomes: Vec<FigureOutcome> = match &args.only {
        None => registry.build_all(&report),
        Some(only) => only
            .iter()
            .map(|id| match registry.build(id, &report) {
                Ok(rendered) => FigureOutcome::Rendered(rendered),
                Err(perils_survey::render::FigureError::MissingColumns { figure, missing }) => {
                    FigureOutcome::Skipped {
                        id: figure,
                        missing,
                    }
                }
                Err(error) => FigureOutcome::Failed {
                    id: id.clone(),
                    error,
                },
            })
            .collect(),
    };

    let mut failed = false;
    let mut rendered = Vec::new();
    for outcome in &outcomes {
        match outcome {
            FigureOutcome::Rendered(figure) => rendered.push(figure),
            FigureOutcome::Skipped { id, missing } => {
                eprintln!("skipped figure {id:?}: missing columns {missing:?}");
            }
            FigureOutcome::Failed { id, error } => {
                eprintln!("figure {id:?} failed: {error}");
                failed = true;
            }
        }
    }

    // Route rendered figures into the selected sinks. CSV directories go
    // through the streaming row-at-a-time sink (byte-identical output, no
    // full-table buffering — the paper-scale CDF exports are the point).
    let sink_result: std::io::Result<()> = (|| {
        match &args.out_dir {
            Some(dir) if args.format == SinkFormat::Csv => {
                let mut sink = StreamingCsvSink::new(dir);
                for figure in &rendered {
                    sink.emit(figure)?;
                }
                sink.finish()?;
                eprintln!(
                    "wrote {} figure files to {dir} (streaming)",
                    sink.written().len()
                );
            }
            Some(dir) => {
                let mut sink = DirectorySink::new(dir, args.format);
                for figure in &rendered {
                    sink.emit(figure)?;
                }
                sink.finish()?;
                eprintln!("wrote {} figure files to {dir}", sink.written().len());
            }
            None => {
                let stdout = std::io::stdout();
                let mut sink = WriterSink::new(stdout.lock(), args.format);
                for figure in &rendered {
                    sink.emit(figure)?;
                }
                sink.finish()?;
                if args.format == SinkFormat::Text && args.only.is_none() {
                    print_extras(&report);
                }
            }
        }
        if let Some(dir) = &args.legacy_csv_dir {
            let mut sink = StreamingCsvSink::new(dir);
            for figure in &rendered {
                sink.emit(figure)?;
            }
            sink.finish()?;
            eprintln!(
                "wrote {} CSV files to {dir} (streaming)",
                sink.written().len()
            );
        }
        Ok(())
    })();
    if let Err(e) = sink_result {
        eprintln!("error: writing figures failed: {e}");
        std::process::exit(1);
    }
    if failed {
        std::process::exit(1);
    }
}
