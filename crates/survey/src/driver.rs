//! The legacy survey entry point, now a thin wrapper over the pluggable
//! [`engine`](crate::engine).
//!
//! [`run_survey`] configures an [`Engine`] with the six seed measurements
//! (TCB statistics, flattened min-cut, value ranking) and runs it over a
//! [`SyntheticSource`]. The engine keeps the seed driver's execution model
//! — crossbeam-sharded contiguous name ranges, closure computed once per
//! name, deterministic merge — so results are byte-identical to the
//! original hardwired loop at any thread count. Register additional
//! [`perils_core::NameMetric`]s through [`Engine`] directly when you need
//! more than the classic six columns, and pair each with a
//! [`crate::render::Figure`] on a [`crate::render::FigureRegistry`] to
//! render its output alongside the classic figures.

use crate::engine::{Engine, SyntheticSource};
use crate::params::TopologyParams;
use std::num::NonZeroUsize;

pub use crate::engine::SurveyReport;

/// Survey configuration.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Generator parameters.
    pub params: TopologyParams,
    /// Also run the exact AND/OR hijack search on the first `n` names
    /// (0 = skip). The flattened min-cut — the paper's method — is always
    /// computed for every name.
    pub exact_hijack_sample: usize,
    /// Thread count (`None`: use available parallelism).
    pub threads: Option<NonZeroUsize>,
}

impl SurveyConfig {
    /// A miniature survey for tests and doctests.
    pub fn tiny(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::tiny(seed),
            exact_hijack_sample: 25,
            threads: None,
        }
    }

    /// The default laptop-scale survey.
    pub fn default_scaled(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::default_scaled(seed),
            exact_hijack_sample: 500,
            threads: None,
        }
    }

    /// The paper-scale survey (593k names; minutes of CPU).
    pub fn paper(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::paper(seed),
            exact_hijack_sample: 500,
            threads: None,
        }
    }

    /// The engine this configuration describes (built-in metrics only).
    pub fn engine(&self) -> Engine {
        Engine::with_builtin_metrics()
            .threads(self.threads)
            .exact_hijack_sample(self.exact_hijack_sample)
    }
}

/// Runs the full survey described by `config` through the engine.
pub fn run_survey(config: &SurveyConfig) -> SurveyReport {
    config.engine().run(SyntheticSource {
        params: config.params.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_survey_runs_and_is_deterministic() {
        let a = run_survey(&SurveyConfig::tiny(11));
        let b = run_survey(&SurveyConfig::tiny(11));
        assert_eq!(a.tcb_sizes(), b.tcb_sizes());
        assert_eq!(a.cut_size(), b.cut_size());
        assert_eq!(a.safe_in_cut(), b.safe_in_cut());
        assert_eq!(a.value().names_seen(), b.value().names_seen());
        assert!(!a.tcb_sizes().is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut one = SurveyConfig::tiny(13);
        one.threads = NonZeroUsize::new(1);
        let mut four = SurveyConfig::tiny(13);
        four.threads = NonZeroUsize::new(4);
        let a = run_survey(&one);
        let b = run_survey(&four);
        assert_eq!(a.tcb_sizes(), b.tcb_sizes());
        assert_eq!(a.safe_in_cut(), b.safe_in_cut());
        let ranking_a = a.value().ranking();
        let ranking_b = b.value().ranking();
        assert_eq!(ranking_a, ranking_b);
    }

    #[test]
    fn per_name_vectors_align() {
        let report = run_survey(&SurveyConfig::tiny(17));
        let n = report.world.names.len();
        assert_eq!(report.tcb_sizes().len(), n);
        assert_eq!(report.nameowner().len(), n);
        assert_eq!(report.vulnerable_in_tcb().len(), n);
        assert_eq!(report.safety_percent().len(), n);
        assert_eq!(report.cut_size().len(), n);
        assert_eq!(report.safe_in_cut().len(), n);
        assert_eq!(report.value().names_seen() as usize, n);
        // Sanity: vulnerable members never exceed TCB size; safety is
        // consistent.
        for i in 0..n {
            assert!(report.vulnerable_in_tcb()[i] <= report.tcb_sizes()[i]);
            assert!(report.nameowner()[i] <= report.tcb_sizes()[i]);
            assert!(report.safe_in_cut()[i] <= report.cut_size()[i]);
        }
    }

    #[test]
    fn exact_sample_present_and_no_larger_than_flattened() {
        let report = run_survey(&SurveyConfig::tiny(19));
        assert!(!report.exact_sample.is_empty());
        for &(i, exact_size, _) in &report.exact_sample {
            if report.cut_size()[i] > 0 {
                assert!(
                    exact_size <= report.cut_size()[i],
                    "exact {} > flattened {} for name {}",
                    exact_size,
                    report.cut_size()[i],
                    report.world.names[i].name
                );
            }
        }
    }

    #[test]
    fn top500_helper() {
        let report = run_survey(&SurveyConfig::tiny(23));
        let subset = report.top500_of(report.tcb_sizes());
        assert_eq!(subset.len(), report.top500().len());
    }
}
