//! The survey driver: resolve every crawled name's dependency structure
//! and accumulate the per-name statistics all figures are computed from.
//!
//! The heavy loop (closure + TCB stats + min-cut per name) is sharded
//! across threads with `crossbeam` scoped threads; every shard works on an
//! immutable universe and writes into its own slice, so the result is
//! deterministic regardless of thread count.

use crate::params::TopologyParams;
use crate::topology::SyntheticWorld;
use perils_core::closure::DependencyIndex;
use perils_core::hijack::{min_cut_flattened, min_hijack_exact};
use perils_core::tcb::TcbStats;
use perils_core::value::ValueIndex;
use std::num::NonZeroUsize;

/// Survey configuration.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Generator parameters.
    pub params: TopologyParams,
    /// Also run the exact AND/OR hijack search on the first `n` names
    /// (0 = skip). The flattened min-cut — the paper's method — is always
    /// computed for every name.
    pub exact_hijack_sample: usize,
    /// Thread count (`None`: use available parallelism).
    pub threads: Option<NonZeroUsize>,
}

impl SurveyConfig {
    /// A miniature survey for tests and doctests.
    pub fn tiny(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::tiny(seed),
            exact_hijack_sample: 25,
            threads: None,
        }
    }

    /// The default laptop-scale survey.
    pub fn default_scaled(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::default_scaled(seed),
            exact_hijack_sample: 500,
            threads: None,
        }
    }

    /// The paper-scale survey (593k names; minutes of CPU).
    pub fn paper(seed: u64) -> SurveyConfig {
        SurveyConfig {
            params: TopologyParams::paper(seed),
            exact_hijack_sample: 500,
            threads: None,
        }
    }
}

/// Per-name survey measurements, in `world.names` order.
#[derive(Debug)]
pub struct SurveyReport {
    /// The surveyed world (universe + names + metadata).
    pub world: SyntheticWorld,
    /// TCB size per name (root servers excluded).
    pub tcb_sizes: Vec<usize>,
    /// Nameowner-administered TCB members per name.
    pub nameowner: Vec<usize>,
    /// Vulnerable TCB members per name.
    pub vulnerable_in_tcb: Vec<usize>,
    /// Percent of TCB with no known vulnerability, per name.
    pub safety_percent: Vec<f64>,
    /// Flattened min-cut size per name (0: uncuttable / root-served).
    pub cut_size: Vec<usize>,
    /// Non-vulnerable members of the min-cut per name.
    pub safe_in_cut: Vec<usize>,
    /// Names-controlled accumulator over all surveyed names.
    pub value: ValueIndex,
    /// `(name index, exact size, exact safe members)` for the sampled
    /// exact hijack runs.
    pub exact_sample: Vec<(usize, usize, usize)>,
}

impl SurveyReport {
    /// Indices of the top-500 popular names (forwarded from the world).
    pub fn top500(&self) -> &[usize] {
        &self.world.top500
    }

    /// Selects per-name values for the top-500 subset.
    pub fn top500_of<'a, T: Copy>(&self, values: &'a [T]) -> Vec<T> {
        self.world.top500.iter().map(|&i| values[i]).collect()
    }
}

/// Runs the full survey described by `config`.
pub fn run_survey(config: &SurveyConfig) -> SurveyReport {
    let world = SyntheticWorld::generate(&config.params);
    let index = DependencyIndex::build(&world.universe);
    let n = world.names.len();

    let threads = config
        .threads
        .map(NonZeroUsize::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
        })
        .clamp(1, 16);

    let mut tcb_sizes = vec![0usize; n];
    let mut nameowner = vec![0usize; n];
    let mut vulnerable_in_tcb = vec![0usize; n];
    let mut safety_percent = vec![0f64; n];
    let mut cut_size = vec![0usize; n];
    let mut safe_in_cut = vec![0usize; n];

    // Shard the per-name loop: each worker owns disjoint slices.
    let chunk = n.div_ceil(threads).max(1);
    let universe = &world.universe;
    let names = &world.names;
    let index_ref = &index;

    let mut value_shards: Vec<ValueIndex> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = (
            tcb_sizes.as_mut_slice(),
            nameowner.as_mut_slice(),
            vulnerable_in_tcb.as_mut_slice(),
            safety_percent.as_mut_slice(),
            cut_size.as_mut_slice(),
            safe_in_cut.as_mut_slice(),
        );
        let mut start = 0usize;
        while start < n {
            let len = chunk.min(n - start);
            let (tcb_s, tcb_rest) = rest.0.split_at_mut(len);
            let (own_s, own_rest) = rest.1.split_at_mut(len);
            let (vul_s, vul_rest) = rest.2.split_at_mut(len);
            let (saf_s, saf_rest) = rest.3.split_at_mut(len);
            let (cut_s, cut_rest) = rest.4.split_at_mut(len);
            let (sic_s, sic_rest) = rest.5.split_at_mut(len);
            rest = (tcb_rest, own_rest, vul_rest, saf_rest, cut_rest, sic_rest);
            let range = start..start + len;
            handles.push(scope.spawn(move |_| {
                let mut local_value = ValueIndex::new(universe);
                for (slot, i) in range.clone().enumerate() {
                    let closure = index_ref.closure_for(universe, &names[i].name);
                    let stats = TcbStats::compute(universe, &closure);
                    tcb_s[slot] = stats.tcb_size;
                    own_s[slot] = stats.nameowner_administered;
                    vul_s[slot] = stats.vulnerable;
                    saf_s[slot] = stats.safety_percent();
                    match min_cut_flattened(universe, index_ref, &closure) {
                        Some(cut) => {
                            cut_s[slot] = cut.size();
                            sic_s[slot] = cut.safe_members;
                        }
                        None => {
                            cut_s[slot] = 0;
                            sic_s[slot] = 0;
                        }
                    }
                    local_value.record(universe, &closure);
                }
                local_value
            }));
            start += len;
        }
        for handle in handles {
            value_shards.push(handle.join().expect("survey shard panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut value = ValueIndex::new(&world.universe);
    for shard in &value_shards {
        value.merge(shard);
    }

    // Exact hijack sample (sequential; used by the ablation analysis).
    let mut exact_sample = Vec::new();
    for i in 0..config.exact_hijack_sample.min(n) {
        let closure = index.closure_for(&world.universe, &world.names[i].name);
        if let Some(exact) = min_hijack_exact(&world.universe, &closure) {
            exact_sample.push((i, exact.size(), exact.safe_members));
        }
    }

    SurveyReport {
        world,
        tcb_sizes,
        nameowner,
        vulnerable_in_tcb,
        safety_percent,
        cut_size,
        safe_in_cut,
        value,
        exact_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_survey_runs_and_is_deterministic() {
        let a = run_survey(&SurveyConfig::tiny(11));
        let b = run_survey(&SurveyConfig::tiny(11));
        assert_eq!(a.tcb_sizes, b.tcb_sizes);
        assert_eq!(a.cut_size, b.cut_size);
        assert_eq!(a.safe_in_cut, b.safe_in_cut);
        assert_eq!(a.value.names_seen(), b.value.names_seen());
        assert!(!a.tcb_sizes.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut one = SurveyConfig::tiny(13);
        one.threads = NonZeroUsize::new(1);
        let mut four = SurveyConfig::tiny(13);
        four.threads = NonZeroUsize::new(4);
        let a = run_survey(&one);
        let b = run_survey(&four);
        assert_eq!(a.tcb_sizes, b.tcb_sizes);
        assert_eq!(a.safe_in_cut, b.safe_in_cut);
        let ranking_a = a.value.ranking();
        let ranking_b = b.value.ranking();
        assert_eq!(ranking_a, ranking_b);
    }

    #[test]
    fn per_name_vectors_align() {
        let report = run_survey(&SurveyConfig::tiny(17));
        let n = report.world.names.len();
        assert_eq!(report.tcb_sizes.len(), n);
        assert_eq!(report.nameowner.len(), n);
        assert_eq!(report.vulnerable_in_tcb.len(), n);
        assert_eq!(report.safety_percent.len(), n);
        assert_eq!(report.cut_size.len(), n);
        assert_eq!(report.safe_in_cut.len(), n);
        assert_eq!(report.value.names_seen() as usize, n);
        // Sanity: vulnerable members never exceed TCB size; safety is
        // consistent.
        for i in 0..n {
            assert!(report.vulnerable_in_tcb[i] <= report.tcb_sizes[i]);
            assert!(report.nameowner[i] <= report.tcb_sizes[i]);
            assert!(report.safe_in_cut[i] <= report.cut_size[i]);
        }
    }

    #[test]
    fn exact_sample_present_and_no_larger_than_flattened() {
        let report = run_survey(&SurveyConfig::tiny(19));
        assert!(!report.exact_sample.is_empty());
        for &(i, exact_size, _) in &report.exact_sample {
            if report.cut_size[i] > 0 {
                assert!(
                    exact_size <= report.cut_size[i],
                    "exact {} > flattened {} for name {}",
                    exact_size,
                    report.cut_size[i],
                    report.world.names[i].name
                );
            }
        }
    }

    #[test]
    fn top500_helper() {
        let report = run_survey(&SurveyConfig::tiny(23));
        let subset = report.top500_of(&report.tcb_sizes);
        assert_eq!(subset.len(), report.top500().len());
    }
}
