//! The survey harness: synthetic internet generation, the parallel survey
//! driver, and per-figure analysis pipelines.
//!
//! The paper crawled Yahoo!/DMOZ for 593,160 web-server names, resolved
//! them against the live July-2004 DNS, and analyzed the recorded
//! delegation structure. This crate substitutes the live Internet with a
//! parameterized synthetic universe whose *generative mechanisms* mirror
//! the ones the paper identifies:
//!
//! * gTLD registries run well-maintained multi-server clusters;
//! * most second-level domains are hosted by a Zipf-popular ISP/registrar
//!   pool (concentration → Figure 8's heavy tail);
//! * universities and volunteer operators host zones for each other,
//!   forming transitive webs (→ Figure 1-style chains, heavy TCB tails);
//! * many ccTLDs slave their zones across a worldwide volunteer pool
//!   (→ Figure 4's enormous country TCBs);
//! * software versions are assigned per *operator*, not per box, so
//!   vulnerability is correlated within an NS set (→ Figure 7's 30%
//!   fully-vulnerable min-cuts from only 17% vulnerable servers).
//!
//! Modules: [`params`] (presets), [`topology`] (the generator),
//! [`engine`] (the pluggable analysis engine: [`engine::WorldSource`] +
//! registered [`perils_core::NameMetric`]s → columnar
//! [`engine::SurveyReport`]), [`driver`] (the legacy `run_survey` wrapper
//! over the engine), [`render`] (the pluggable output pipeline:
//! [`render::Figure`] + [`render::FigureRegistry`] + [`render::ReportSink`]),
//! [`figures`] (the paper's figure renderers, registered on that pipeline),
//! [`scenario`] (bridging hand-built packet-level scenarios into analyses).
//!
//! Ingestion is **streaming**: every [`engine::WorldSource`] emits an
//! [`engine::WorldStream`] — incremental [`perils_core::UniverseEvent`]s
//! followed by a name stream — which the engine feeds through
//! `perils_core`'s incremental universe builder and, via
//! [`engine::Engine::run_batched`], through bounded name batches, so no
//! stage ever needs the whole feed in memory. Materialized loading
//! ([`engine::WorldSource::load`]) is a thin collector over the stream.

#![forbid(unsafe_code)]

pub mod driver;
pub mod engine;
pub mod figures;
pub mod lint;
pub mod params;
pub mod render;
pub mod scenario;
pub mod snapshot;
pub mod topology;

pub use driver::{run_survey, SurveyConfig};
pub use engine::{
    AnalysisWorld, Engine, ProbedSource, ReportError, ScenarioSource, SurveyReport,
    SyntheticSource, WorldSource, WorldStream,
};
pub use lint::{run_lint, run_lint_with, LintFormat, LintReport, RuleMeta};
pub use params::TopologyParams;
pub use render::{
    DirectorySink, Figure, FigureError, FigureOutcome, FigureRegistry, RenderedFigure, ReportSink,
    SinkFormat, StreamingCsvSink, WriterSink,
};
pub use snapshot::{
    load_world, load_world_with, save_world, LoadedWorld, NameTable, SnapshotBackend,
};
pub use topology::SyntheticWorld;
