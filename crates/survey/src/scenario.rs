//! Bridging packet-level scenarios into the analysis model.
//!
//! Hand-built [`Scenario`]s (Figure 1, fbi.gov) and tiny generated worlds
//! can be analyzed two ways: structurally (straight from the zone
//! registry) or by actually probing the simulated network with the
//! resolver. This module provides both paths plus the glue that turns a
//! wire-probed [`DependencyReport`] into a [`Universe`], so integration
//! tests can assert the two agree.

use perils_authserver::scenarios::Scenario;
use perils_core::universe::{Universe, UniverseEvent};
use perils_dns::name::DnsName;
use perils_resolver::DependencyReport;
use perils_vulndb::VulnDb;
use std::collections::BTreeMap;

/// Streams a scenario's registry as incremental [`UniverseEvent`]s, with
/// banners taken from the server specs (ground truth). The walk itself —
/// server events per NS mention, then zone events with the apex ∪
/// parent-view NS set — is [`perils_core::registry_events`], the same
/// single definition [`Universe::from_registry`] collects over; this
/// wrapper only supplies the spec-backed banner lookup.
pub fn scenario_events(scenario: &Scenario) -> Vec<UniverseEvent> {
    let banners: BTreeMap<DnsName, String> = scenario
        .specs
        .iter()
        .filter_map(|spec| {
            spec.software
                .banner()
                .map(|b| (spec.host_name.to_lowercase(), b))
        })
        .collect();
    perils_core::registry_events(&scenario.registry, |server| {
        banners.get(&server.to_lowercase()).cloned()
    })
}

/// Builds the analysis universe structurally from a scenario's registry,
/// with banners taken from the server specs (ground truth) — the
/// materialized collector over [`scenario_events`].
pub fn universe_from_scenario(scenario: &Scenario) -> Universe {
    let db = VulnDb::isc_feb_2004();
    let mut builder = Universe::builder();
    for event in scenario_events(scenario) {
        builder.apply(event, &db);
    }
    builder.finish()
}

/// Streams wire-probed dependency reports (one per surveyed name) as
/// incremental [`UniverseEvent`]s: the root hints first, then each
/// report's banners and zone→NS views in report order.
pub fn report_events(reports: &[DependencyReport], root_names: &[DnsName]) -> Vec<UniverseEvent> {
    let mut events = Vec::new();
    for root in root_names {
        events.push(UniverseEvent::Server {
            name: root.clone(),
            banner: None,
            is_root: true,
        });
    }
    for report in reports {
        for (server, banner) in &report.banners {
            events.push(UniverseEvent::Server {
                name: server.clone(),
                banner: banner.clone(),
                is_root: false,
            });
        }
        for (zone, ns) in &report.zone_ns {
            events.push(UniverseEvent::Zone {
                origin: zone.clone(),
                ns: ns.iter().cloned().collect(),
            });
        }
    }
    events
}

/// Builds a universe from wire-probed dependency reports, merging their
/// zone→NS views and banners — the materialized collector over
/// [`report_events`].
///
/// `root_names` marks which servers are root servers (the prober cannot
/// see past the hints).
pub fn universe_from_reports(reports: &[DependencyReport], root_names: &[DnsName]) -> Universe {
    let db = VulnDb::isc_feb_2004();
    let mut builder = Universe::builder();
    for event in report_events(reports, root_names) {
        builder.apply(event, &db);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_authserver::scenarios::fbi_case;
    use perils_dns::name::name;

    #[test]
    fn scenario_universe_carries_vulnerability_truth() {
        let scenario = fbi_case();
        let u = universe_from_scenario(&scenario);
        let ns2 = u
            .server_id(&name("reston-ns2.telemail.net"))
            .expect("exists");
        assert!(u.server(ns2).vulnerable);
        assert!(u.server(ns2).scripted_exploit);
        let ns1 = u
            .server_id(&name("reston-ns1.telemail.net"))
            .expect("exists");
        assert!(!u.server(ns1).vulnerable);
        // Root flag comes from serving the root zone.
        let root = u.server_id(&name("a.root-servers.net")).expect("exists");
        assert!(u.server(root).is_root);
    }

    #[test]
    fn fbi_zone_structure_present() {
        let u = universe_from_scenario(&fbi_case());
        let fbi = u.zone_id(&name("fbi.gov")).expect("fbi.gov zone");
        let ns: Vec<String> = u
            .zone(fbi)
            .ns
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        assert!(ns.contains(&"dns.sprintip.com".to_string()));
        assert!(ns.contains(&"dns2.sprintip.com".to_string()));
    }
}
