//! Per-figure analysis pipelines and renderers.
//!
//! One function per paper artifact (Figures 2–9 plus the headline inline
//! statistics), each returning a plain-data struct with a `render()`
//! method producing the aligned-text table and a `to_csv()` for external
//! plotting. EXPERIMENTS.md records paper-vs-measured for each of these.

use crate::engine::SurveyReport;
use crate::topology::GTLDS;
use perils_dns::name::{name, DnsName};
use perils_util::stats::{Cdf, RankCurve, Summary};
use perils_util::table::{fmt_f64, fmt_percent, Align, Table};

/// Figure 2: CDF of TCB sizes, all names vs. top-500.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `(tcb size, percent of names ≤ size)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500 subset.
    pub top500_points: Vec<(f64, f64)>,
    /// Summary over all names.
    pub all: Summary,
    /// Summary over the top-500.
    pub top500: Summary,
    /// Fraction of all names with TCB > 200.
    pub frac_gt_200: f64,
    /// Fraction of top-500 names with TCB > 200.
    pub top500_frac_gt_200: f64,
}

/// Computes Figure 2.
pub fn fig2(report: &SurveyReport) -> Fig2 {
    let all_cdf = Cdf::of_counts(report.tcb_sizes());
    let top500_sizes = report.top500_of(report.tcb_sizes());
    let top_cdf = Cdf::of_counts(&top500_sizes);
    Fig2 {
        all_points: all_cdf.plot_points(64),
        top500_points: top_cdf.plot_points(64),
        all: Summary::of_counts(report.tcb_sizes()),
        top500: Summary::of_counts(&top500_sizes),
        frac_gt_200: all_cdf.fraction_above(200.0),
        top500_frac_gt_200: top_cdf.fraction_above(200.0),
    }
}

impl Fig2 {
    /// Renders the figure as a table of CDF points plus the summary row.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["tcb size", "all names CDF", "top-500 CDF"]).align(vec![
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for &(x, pct) in &self.all_points {
            // Step-function lookup: the top-500 CDF value at this x is the
            // last plot point at or below it.
            let top_pct = self
                .top500_points
                .iter()
                .take_while(|&&(tx, _)| tx <= x)
                .last()
                .map(|&(_, p)| p)
                .unwrap_or(0.0);
            t.row(vec![
                format!("{x:.0}"),
                format!("{pct:.1}%"),
                format!("{top_pct:.1}%"),
            ]);
        }
        format!(
            "Figure 2 — Size of TCB (CDF)\n{}\nall: median {} mean {} | >200: {} ; top-500: mean {} | >200: {}\n",
            t.render(),
            fmt_f64(self.all.median, 0),
            fmt_f64(self.all.mean, 1),
            fmt_percent(self.frac_gt_200),
            fmt_f64(self.top500.mean, 1),
            fmt_percent(self.top500_frac_gt_200),
        )
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["series", "tcb_size", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t.render_csv()
    }
}

/// A per-TLD mean TCB bar (Figures 3 and 4).
#[derive(Debug, Clone)]
pub struct TldBar {
    /// TLD label.
    pub tld: String,
    /// Names surveyed under it.
    pub names: usize,
    /// Mean TCB size.
    pub mean_tcb: f64,
}

fn tld_means(report: &SurveyReport, keep: impl Fn(&str) -> bool) -> Vec<TldBar> {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<String, (usize, u64)> = BTreeMap::new();
    for (i, survey_name) in report.world.names.iter().enumerate() {
        let tld = survey_name.tld.to_string();
        if keep(&tld) {
            let entry = sums.entry(tld).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += report.tcb_sizes()[i] as u64;
        }
    }
    sums.into_iter()
        .map(|(tld, (count, total))| TldBar {
            tld,
            names: count,
            mean_tcb: total as f64 / count.max(1) as f64,
        })
        .collect()
}

/// Figure 3: mean TCB per gTLD, in the paper's plotted order.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Bars in the paper's order (aero, int, name, mil, info, edu, biz,
    /// gov, org, net, com, coop).
    pub bars: Vec<TldBar>,
    /// Mean of the per-gTLD means (the paper's "gTLD average 87").
    pub group_mean: f64,
}

/// Computes Figure 3.
pub fn fig3(report: &SurveyReport) -> Fig3 {
    let mut bars = tld_means(report, |tld| GTLDS.contains(&tld));
    bars.sort_by_key(|bar| {
        GTLDS
            .iter()
            .position(|g| *g == bar.tld)
            .unwrap_or(usize::MAX)
    });
    let group_mean = if bars.is_empty() {
        0.0
    } else {
        bars.iter().map(|b| b.mean_tcb).sum::<f64>() / bars.len() as f64
    };
    Fig3 { bars, group_mean }
}

impl Fig3 {
    /// Renders the bar table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["gTLD", "names", "mean TCB"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                fmt_f64(bar.mean_tcb, 1),
            ]);
        }
        format!(
            "Figure 3 — Average TCB size for gTLD names\n{}\ngroup mean: {}\n",
            t.render(),
            fmt_f64(self.group_mean, 1)
        )
    }

    /// CSV rows `tld,names,mean_tcb`.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["tld", "names", "mean_tcb"]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                format!("{}", bar.mean_tcb),
            ]);
        }
        t.render_csv()
    }
}

/// Figure 4: the fifteen ccTLDs with the largest mean TCBs.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The worst fifteen, descending.
    pub bars: Vec<TldBar>,
    /// Mean of per-ccTLD means over all ccTLDs (the paper's 209).
    pub group_mean: f64,
}

/// Computes Figure 4.
pub fn fig4(report: &SurveyReport) -> Fig4 {
    let mut bars = tld_means(report, |tld| !GTLDS.contains(&tld));
    let group_mean = if bars.is_empty() {
        0.0
    } else {
        bars.iter().map(|b| b.mean_tcb).sum::<f64>() / bars.len() as f64
    };
    bars.sort_by(|a, b| b.mean_tcb.partial_cmp(&a.mean_tcb).expect("finite"));
    bars.truncate(15);
    Fig4 { bars, group_mean }
}

impl Fig4 {
    /// Renders the bar table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["ccTLD", "names", "mean TCB"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                fmt_f64(bar.mean_tcb, 1),
            ]);
        }
        format!(
            "Figure 4 — Average TCB size for the 15 most vulnerable ccTLDs\n{}\nccTLD group mean: {}\n",
            t.render(),
            fmt_f64(self.group_mean, 1)
        )
    }

    /// CSV rows `tld,names,mean_tcb`.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["tld", "names", "mean_tcb"]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                format!("{}", bar.mean_tcb),
            ]);
        }
        t.render_csv()
    }
}

/// Figure 5: CDF of the number of vulnerable TCB members.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(count, percent ≤ count)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500.
    pub top500_points: Vec<(f64, f64)>,
    /// Fraction of names with ≥1 vulnerable TCB member (the paper's 45%).
    pub frac_with_vulnerable: f64,
    /// Mean vulnerable members (the paper's 4.1).
    pub mean_vulnerable: f64,
    /// Mean for the top-500 (the paper's 7.6).
    pub top500_mean_vulnerable: f64,
}

/// Computes Figure 5.
pub fn fig5(report: &SurveyReport) -> Fig5 {
    let cdf = Cdf::of_counts(report.vulnerable_in_tcb());
    let top = report.top500_of(report.vulnerable_in_tcb());
    let top_cdf = Cdf::of_counts(&top);
    Fig5 {
        all_points: cdf.plot_points(64),
        top500_points: top_cdf.plot_points(64),
        frac_with_vulnerable: cdf.fraction_above(0.0),
        mean_vulnerable: Summary::of_counts(report.vulnerable_in_tcb()).mean,
        top500_mean_vulnerable: Summary::of_counts(&top).mean,
    }
}

impl Fig5 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["vulnerable in TCB", "all names CDF"])
            .align(vec![Align::Right, Align::Right]);
        for &(x, pct) in &self.all_points {
            t.row(vec![format!("{x:.0}"), format!("{pct:.1}%")]);
        }
        format!(
            "Figure 5 — Vulnerable nameservers in TCB (CDF)\n{}\nnames with ≥1 vulnerable: {} | mean {} (top-500 {})\n",
            t.render(),
            fmt_percent(self.frac_with_vulnerable),
            fmt_f64(self.mean_vulnerable, 1),
            fmt_f64(self.top500_mean_vulnerable, 1),
        )
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["series", "vulnerable_count", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t.render_csv()
    }
}

/// Figure 6: names ranked by TCB safety (ascending), log-rank curve.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(rank, safety percent)` sampled log-uniformly in rank; rank 1 is
    /// the *least* safe name.
    pub points: Vec<(usize, f64)>,
    /// Number of names whose entire TCB is vulnerable (safety 0%).
    pub fully_vulnerable_names: usize,
}

/// Computes Figure 6.
pub fn fig6(report: &SurveyReport) -> Fig6 {
    // RankCurve sorts descending; we want ascending safety, so rank by
    // (100 - safety).
    let danger: Vec<f64> = report.safety_percent().iter().map(|&s| 100.0 - s).collect();
    let curve = RankCurve::of(&danger);
    let points = curve
        .log_points(8)
        .into_iter()
        .map(|(rank, danger)| (rank, 100.0 - danger))
        .collect();
    Fig6 {
        points,
        fully_vulnerable_names: report
            .safety_percent()
            .iter()
            .filter(|&&s| s <= 0.0)
            .count(),
    }
}

impl Fig6 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["rank (least safe first)", "safety of TCB"])
            .align(vec![Align::Right, Align::Right]);
        for &(rank, safety) in &self.points {
            t.row(vec![rank.to_string(), format!("{safety:.1}%")]);
        }
        format!(
            "Figure 6 — Percentage of non-vulnerable nodes in TCB\n{}\nnames with fully vulnerable TCB: {}\n",
            t.render(),
            self.fully_vulnerable_names
        )
    }

    /// CSV rows `rank,safety_percent`.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["rank", "safety_percent"]);
        for &(rank, safety) in &self.points {
            t.row(vec![rank.to_string(), format!("{safety}")]);
        }
        t.render_csv()
    }
}

/// Figure 7: CDF of safe bottleneck servers in the min-cut.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(safe count, percent ≤ count)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500.
    pub top500_points: Vec<(f64, f64)>,
    /// Fraction of names whose min-cut is entirely vulnerable (the paper's
    /// 30%).
    pub frac_fully_vulnerable_cut: f64,
    /// Fraction with exactly one safe bottleneck (the paper's extra 10%).
    pub frac_one_safe: f64,
    /// Mean min-cut size (the paper's 2.5).
    pub mean_cut_size: f64,
}

/// Computes Figure 7.
pub fn fig7(report: &SurveyReport) -> Fig7 {
    let cuttable: Vec<usize> = report
        .cut_size()
        .iter()
        .zip(report.safe_in_cut())
        .filter(|&(&size, _)| size > 0)
        .map(|(_, &safe)| safe)
        .collect();
    let cut_sizes: Vec<usize> = report
        .cut_size()
        .iter()
        .copied()
        .filter(|&s| s > 0)
        .collect();
    let cdf = Cdf::of_counts(&cuttable);
    let top: Vec<usize> = report
        .top500()
        .iter()
        .filter(|&&i| report.cut_size()[i] > 0)
        .map(|&i| report.safe_in_cut()[i])
        .collect();
    let top_cdf = Cdf::of_counts(&top);
    let n = cuttable.len().max(1) as f64;
    let zero = cuttable.iter().filter(|&&s| s == 0).count() as f64;
    let one = cuttable.iter().filter(|&&s| s == 1).count() as f64;
    Fig7 {
        all_points: cdf.plot_points(32),
        top500_points: top_cdf.plot_points(32),
        frac_fully_vulnerable_cut: zero / n,
        frac_one_safe: one / n,
        mean_cut_size: Summary::of_counts(&cut_sizes).mean,
    }
}

impl Fig7 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["safe bottlenecks", "all names CDF"])
            .align(vec![Align::Right, Align::Right]);
        for &(x, pct) in &self.all_points {
            t.row(vec![format!("{x:.0}"), format!("{pct:.1}%")]);
        }
        format!(
            "Figure 7 — DNS nameserver bottlenecks (safe servers in min-cut)\n{}\nfully-vulnerable min-cut: {} | exactly one safe: {} | mean cut size {}\n",
            t.render(),
            fmt_percent(self.frac_fully_vulnerable_cut),
            fmt_percent(self.frac_one_safe),
            fmt_f64(self.mean_cut_size, 1),
        )
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["series", "safe_bottlenecks", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t.render_csv()
    }
}

/// Figures 8 and 9: rank vs. names-controlled curves.
#[derive(Debug, Clone)]
pub struct RankFigure {
    /// Series name → `(rank, names controlled)` log-sampled points.
    pub series: Vec<(String, Vec<(usize, f64)>)>,
    /// Servers controlling more than 10% of surveyed names.
    pub controlling_10pct: usize,
    /// Mean and median names-controlled (non-zero servers).
    pub mean: f64,
    /// Median names-controlled.
    pub median: f64,
}

/// Computes Figure 8 (all servers + vulnerable servers).
pub fn fig8(report: &SurveyReport) -> RankFigure {
    let universe = &report.world.universe;
    let all: Vec<u64> = report.value().ranking().iter().map(|&(_, c)| c).collect();
    let vulnerable: Vec<u64> = report
        .value()
        .ranking_where(universe, |s| s.vulnerable)
        .iter()
        .map(|&(_, c)| c)
        .collect();
    let (mean, median) = report.value().mean_median();
    RankFigure {
        series: vec![
            ("all".to_string(), curve_points(&all)),
            ("vulnerable".to_string(), curve_points(&vulnerable)),
        ],
        controlling_10pct: report.value().servers_controlling_more_than(0.10),
        mean,
        median,
    }
}

/// Computes Figure 9 (`.edu` and `.org` servers).
pub fn fig9(report: &SurveyReport) -> RankFigure {
    let universe = &report.world.universe;
    let edu: Vec<u64> = report
        .value()
        .ranking_in_tld(universe, &name("edu"))
        .iter()
        .map(|&(_, c)| c)
        .collect();
    let org: Vec<u64> = report
        .value()
        .ranking_in_tld(universe, &name("org"))
        .iter()
        .map(|&(_, c)| c)
        .collect();
    let (mean, median) = report.value().mean_median();
    RankFigure {
        series: vec![
            ("edu".to_string(), curve_points(&edu)),
            ("org".to_string(), curve_points(&org)),
        ],
        controlling_10pct: report.value().servers_controlling_more_than(0.10),
        mean,
        median,
    }
}

fn curve_points(descending_counts: &[u64]) -> Vec<(usize, f64)> {
    let values: Vec<f64> = descending_counts.iter().map(|&c| c as f64).collect();
    RankCurve { descending: values }.log_points(8)
}

impl RankFigure {
    /// Renders all series.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for (label, points) in &self.series {
            let mut t = Table::new(vec!["rank", "names controlled"])
                .align(vec![Align::Right, Align::Right]);
            for &(rank, count) in points {
                t.row(vec![rank.to_string(), format!("{count:.0}")]);
            }
            out.push_str(&format!("series: {label}\n{}\n", t.render()));
        }
        out.push_str(&format!(
            "servers controlling >10% of names: {} | mean {} median {}\n",
            self.controlling_10pct,
            fmt_f64(self.mean, 1),
            fmt_f64(self.median, 1),
        ));
        out
    }

    /// CSV with `series,rank,names_controlled` rows.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["series", "rank", "names_controlled"]);
        for (label, points) in &self.series {
            for &(rank, count) in points {
                t.row(vec![label.clone(), rank.to_string(), format!("{count}")]);
            }
        }
        t.render_csv()
    }
}

/// The paper's headline inline statistics (abstract, §3, §5).
#[derive(Debug, Clone)]
pub struct Headline {
    /// Surveyed names.
    pub names: usize,
    /// Distinct TLDs among surveyed names.
    pub tlds: usize,
    /// Discovered (non-root) nameservers.
    pub servers: usize,
    /// Vulnerable servers.
    pub vulnerable_servers: usize,
    /// Mean TCB size (paper: 46).
    pub mean_tcb: f64,
    /// Median TCB size (paper: 26).
    pub median_tcb: f64,
    /// Mean nameowner-administered servers (paper: 2.2).
    pub mean_nameowner: f64,
    /// Names with ≥1 vulnerable TCB member (paper: 264,599 ≈ 45%).
    pub names_with_vulnerable_dep: usize,
    /// Fraction of names with ≥1 vulnerable TCB member.
    pub frac_with_vulnerable_dep: f64,
    /// Fraction of names with an all-vulnerable min-cut (paper: 30%).
    pub frac_hijackable: f64,
    /// Mean min-cut size (paper: 2.5).
    pub mean_cut: f64,
    /// Servers controlling > 10% of names (paper: ~125).
    pub critical_servers: usize,
    /// How many critical servers are gTLD registry boxes (paper: ~30).
    pub critical_gtld: usize,
    /// How many critical servers are vulnerable (paper: ~12).
    pub critical_vulnerable: usize,
    /// How many critical servers live under .edu (paper: ~25).
    pub critical_edu: usize,
}

/// Computes the headline statistics.
pub fn headline(report: &SurveyReport) -> Headline {
    let universe = &report.world.universe;
    let tlds: std::collections::BTreeSet<String> = report
        .world
        .names
        .iter()
        .map(|n| n.tld.to_string())
        .collect();
    let vulnerable_servers = universe
        .server_ids()
        .filter(|&s| universe.server(s).vulnerable && !universe.server(s).is_root)
        .count();
    let servers = universe
        .server_ids()
        .filter(|&s| !universe.server(s).is_root)
        .count();
    let names_with_vulnerable_dep = report
        .vulnerable_in_tcb()
        .iter()
        .filter(|&&v| v > 0)
        .count();
    let cuttable = report.cut_size().iter().filter(|&&c| c > 0).count().max(1);
    let hijackable = report
        .cut_size()
        .iter()
        .zip(report.safe_in_cut())
        .filter(|&(&size, &safe)| size > 0 && safe == 0)
        .count();
    let threshold = (report.value().names_seen() as f64 * 0.10).floor() as u64;
    let critical: Vec<_> = report
        .value()
        .ranking()
        .into_iter()
        .filter(|&(_, c)| c > threshold)
        .collect();
    let is_gtld_box = |server_name: &DnsName| {
        server_name.is_subdomain_of(&name("gtld-servers.net"))
            || server_name.is_subdomain_of(&name("nstld.com"))
            || GTLDS
                .iter()
                .any(|g| server_name.is_subdomain_of(&name(&format!("{g}-servers.net"))))
    };
    let critical_gtld = critical
        .iter()
        .filter(|&&(s, _)| is_gtld_box(&universe.server(s).name))
        .count();
    let critical_vulnerable = critical
        .iter()
        .filter(|&&(s, _)| universe.server(s).vulnerable)
        .count();
    let critical_edu = critical
        .iter()
        .filter(|&&(s, _)| universe.server(s).name.is_subdomain_of(&name("edu")))
        .count();
    let cut_sizes: Vec<usize> = report
        .cut_size()
        .iter()
        .copied()
        .filter(|&c| c > 0)
        .collect();
    Headline {
        names: report.world.names.len(),
        tlds: tlds.len(),
        servers,
        vulnerable_servers,
        mean_tcb: Summary::of_counts(report.tcb_sizes()).mean,
        median_tcb: Summary::of_counts(report.tcb_sizes()).median,
        mean_nameowner: Summary::of_counts(report.nameowner()).mean,
        names_with_vulnerable_dep,
        frac_with_vulnerable_dep: names_with_vulnerable_dep as f64
            / report.tcb_sizes().len().max(1) as f64,
        frac_hijackable: hijackable as f64 / cuttable as f64,
        mean_cut: Summary::of_counts(&cut_sizes).mean,
        critical_servers: critical.len(),
        critical_gtld,
        critical_vulnerable,
        critical_edu,
    }
}

impl Headline {
    /// Renders the headline table with the paper's values alongside.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["statistic", "measured", "paper"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        t.row(vec![
            "surveyed names".to_string(),
            self.names.to_string(),
            "593160".to_string(),
        ]);
        t.row(vec![
            "TLDs".to_string(),
            self.tlds.to_string(),
            "196".to_string(),
        ]);
        t.row(vec![
            "nameservers".to_string(),
            self.servers.to_string(),
            "166771".to_string(),
        ]);
        t.row(vec![
            "vulnerable servers".to_string(),
            format!(
                "{} ({})",
                self.vulnerable_servers,
                fmt_percent(self.vulnerable_servers as f64 / self.servers.max(1) as f64)
            ),
            "27141 (16.3%)".to_string(),
        ]);
        t.row(vec![
            "mean TCB".to_string(),
            fmt_f64(self.mean_tcb, 1),
            "46".to_string(),
        ]);
        t.row(vec![
            "median TCB".to_string(),
            fmt_f64(self.median_tcb, 0),
            "26".to_string(),
        ]);
        t.row(vec![
            "nameowner-administered".to_string(),
            fmt_f64(self.mean_nameowner, 1),
            "2.2".to_string(),
        ]);
        t.row(vec![
            "names w/ vulnerable dep".to_string(),
            format!(
                "{} ({})",
                self.names_with_vulnerable_dep,
                fmt_percent(self.frac_with_vulnerable_dep)
            ),
            "264599 (45%)".to_string(),
        ]);
        t.row(vec![
            "completely hijackable".to_string(),
            fmt_percent(self.frac_hijackable),
            "30%".to_string(),
        ]);
        t.row(vec![
            "mean min-cut".to_string(),
            fmt_f64(self.mean_cut, 1),
            "2.5".to_string(),
        ]);
        t.row(vec![
            "servers controlling >10%".to_string(),
            self.critical_servers.to_string(),
            "~125".to_string(),
        ]);
        t.row(vec![
            "  of which gTLD registry".to_string(),
            self.critical_gtld.to_string(),
            "~30".to_string(),
        ]);
        t.row(vec![
            "  of which vulnerable".to_string(),
            self.critical_vulnerable.to_string(),
            "~12".to_string(),
        ]);
        t.row(vec![
            "  of which .edu".to_string(),
            self.critical_edu.to_string(),
            "~25".to_string(),
        ]);
        format!("Headline statistics (paper abstract / §3)\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_survey, SurveyConfig};

    fn tiny_report() -> SurveyReport {
        run_survey(&SurveyConfig::tiny(29))
    }

    #[test]
    fn all_figures_compute_and_render() {
        let report = tiny_report();
        let f2 = fig2(&report);
        assert!(f2.all.mean > 0.0);
        assert!(f2.render().contains("Figure 2"));
        assert!(f2.to_csv().starts_with("series,"));

        let f3 = fig3(&report);
        assert!(!f3.bars.is_empty());
        assert!(f3.render().contains("Figure 3"));

        let f4 = fig4(&report);
        assert!(f4.bars.len() <= 15);
        assert!(f4.render().contains("Figure 4"));

        let f5 = fig5(&report);
        assert!(f5.render().contains("Figure 5"));
        assert!((0.0..=1.0).contains(&f5.frac_with_vulnerable));

        let f6 = fig6(&report);
        assert!(f6.render().contains("Figure 6"));
        assert!(!f6.points.is_empty());

        let f7 = fig7(&report);
        assert!(f7.render().contains("Figure 7"));
        assert!((0.0..=1.0).contains(&f7.frac_fully_vulnerable_cut));

        let f8 = fig8(&report);
        assert_eq!(f8.series.len(), 2);
        assert!(f8.render("Figure 8").contains("series: all"));

        let f9 = fig9(&report);
        assert!(f9.render("Figure 9").contains("series: edu"));

        let h = headline(&report);
        assert!(h.render().contains("mean TCB"));
        assert_eq!(h.names, report.world.names.len());
    }

    #[test]
    fn fig3_order_matches_paper_axis() {
        let report = tiny_report();
        let f3 = fig3(&report);
        let order: Vec<&str> = f3.bars.iter().map(|b| b.tld.as_str()).collect();
        // Bars must appear in the paper's x-axis order (subset thereof).
        let mut expected = GTLDS.iter();
        for tld in order {
            assert!(expected.any(|g| *g == tld), "gTLD {tld} out of paper order");
        }
    }

    #[test]
    fn fig4_descending() {
        let report = tiny_report();
        let f4 = fig4(&report);
        for w in f4.bars.windows(2) {
            assert!(w[0].mean_tcb >= w[1].mean_tcb);
        }
    }

    #[test]
    fn fig7_fractions_consistent() {
        let report = tiny_report();
        let f7 = fig7(&report);
        assert!(f7.frac_fully_vulnerable_cut + f7.frac_one_safe <= 1.0 + 1e-9);
        assert!(f7.mean_cut_size >= 1.0);
    }

    #[test]
    fn headline_consistency() {
        let report = tiny_report();
        let h = headline(&report);
        assert!(h.vulnerable_servers <= h.servers);
        assert!(h.critical_gtld <= h.critical_servers);
        assert!(h.critical_vulnerable <= h.critical_servers);
        assert!((0.0..=1.0).contains(&h.frac_with_vulnerable_dep));
        assert!((0.0..=1.0).contains(&h.frac_hijackable));
    }
}
