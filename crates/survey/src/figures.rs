//! Per-figure analysis pipelines and renderers.
//!
//! One plain-data struct per paper artifact (Figures 2–9 plus the headline
//! inline statistics), each with a fallible `from_report` constructor, a
//! `render()` method producing the aligned-text table, and a `to_csv()`
//! for external plotting. EXPERIMENTS.md records paper-vs-measured for
//! each of these.
//!
//! Every artifact is also exposed as a registered [`Figure`]
//! ([`FigureRegistry::classic`] holds the paper's nine;
//! [`FigureRegistry::extended`] adds the misconfiguration and DNSSEC
//! summaries), so the figures CLI and golden tests drive them uniformly
//! through the registry. [`ZombieFigure`] is deliberately *not* part of
//! `extended()`: it is the demonstration that a custom metric+figure pair
//! registers through the public APIs alone (`.register(ZombieFigure)`, as
//! the figures CLI does). The legacy free functions (`fig2`…`fig9`,
//! [`headline`]) remain as thin panicking conveniences over the
//! `from_report` constructors.

use crate::engine::{ReportError, SurveyReport};
use crate::render::{Figure, FigureError, FigureRegistry, RenderedFigure};
use crate::topology::GTLDS;
use perils_core::metric::columns;
use perils_core::misconfig::{
    FLAG_DEEP_DEPENDENCY, FLAG_SINGLE_OPERATOR, FLAG_SINGLE_SERVER, FLAG_UNRESOLVABLE_NS,
};
use perils_dns::name::{name, DnsName};
use perils_util::stats::{Cdf, RankCurve, Summary};
use perils_util::table::{fmt_f64, fmt_percent, Align, Table};

/// Figure 2: CDF of TCB sizes, all names vs. top-500.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `(tcb size, percent of names ≤ size)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500 subset.
    pub top500_points: Vec<(f64, f64)>,
    /// Summary over all names.
    pub all: Summary,
    /// Summary over the top-500.
    pub top500: Summary,
    /// Fraction of all names with TCB > 200.
    pub frac_gt_200: f64,
    /// Fraction of top-500 names with TCB > 200.
    pub top500_frac_gt_200: f64,
}

/// Computes Figure 2.
///
/// Thin convenience over [`Fig2::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the TCB columns.
pub fn fig2(report: &SurveyReport) -> Fig2 {
    Fig2::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig2 {
    /// Computes Figure 2 from a report containing [`columns::TCB_SIZE`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig2, ReportError> {
        let tcb_sizes = report.try_counts(columns::TCB_SIZE)?;
        let all_cdf = Cdf::of_counts(tcb_sizes);
        let top500_sizes = report.top500_of(tcb_sizes);
        let top_cdf = Cdf::of_counts(&top500_sizes);
        Ok(Fig2 {
            all_points: all_cdf.plot_points(64),
            top500_points: top_cdf.plot_points(64),
            all: Summary::of_counts(tcb_sizes),
            top500: Summary::of_counts(&top500_sizes),
            frac_gt_200: all_cdf.fraction_above(200.0),
            top500_frac_gt_200: top_cdf.fraction_above(200.0),
        })
    }
    /// Renders the figure as a table of CDF points plus the summary row.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["tcb size", "all names CDF", "top-500 CDF"]).align(vec![
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for &(x, pct) in &self.all_points {
            // Step-function lookup: the top-500 CDF value at this x is the
            // last plot point at or below it.
            let top_pct = self
                .top500_points
                .iter()
                .take_while(|&&(tx, _)| tx <= x)
                .last()
                .map(|&(_, p)| p)
                .unwrap_or(0.0);
            t.row(vec![
                format!("{x:.0}"),
                format!("{pct:.1}%"),
                format!("{top_pct:.1}%"),
            ]);
        }
        format!(
            "Figure 2 — Size of TCB (CDF)\n{}\nall: median {} mean {} | >200: {} ; top-500: mean {} | >200: {}\n",
            t.render(),
            fmt_f64(self.all.median, 0),
            fmt_f64(self.all.mean, 1),
            fmt_percent(self.frac_gt_200),
            fmt_f64(self.top500.mean, 1),
            fmt_percent(self.top500_frac_gt_200),
        )
    }

    /// The CSV-shaped data table with `series,x,y` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["series", "tcb_size", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// A per-TLD mean TCB bar (Figures 3 and 4).
#[derive(Debug, Clone)]
pub struct TldBar {
    /// TLD label.
    pub tld: String,
    /// Names surveyed under it.
    pub names: usize,
    /// Mean TCB size.
    pub mean_tcb: f64,
}

fn tld_means(
    report: &SurveyReport,
    tcb_sizes: &[usize],
    keep: impl Fn(&str) -> bool,
) -> Vec<TldBar> {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<String, (usize, u64)> = BTreeMap::new();
    for (i, survey_name) in report.world.names.iter().enumerate() {
        let tld = survey_name.tld.to_string();
        if keep(&tld) {
            let entry = sums.entry(tld).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += tcb_sizes[i] as u64;
        }
    }
    sums.into_iter()
        .map(|(tld, (count, total))| TldBar {
            tld,
            names: count,
            mean_tcb: total as f64 / count.max(1) as f64,
        })
        .collect()
}

/// Figure 3: mean TCB per gTLD, in the paper's plotted order.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Bars in the paper's order (aero, int, name, mil, info, edu, biz,
    /// gov, org, net, com, coop).
    pub bars: Vec<TldBar>,
    /// Mean of the per-gTLD means (the paper's "gTLD average 87").
    pub group_mean: f64,
}

/// Computes Figure 3.
///
/// Thin convenience over [`Fig3::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the TCB columns.
pub fn fig3(report: &SurveyReport) -> Fig3 {
    Fig3::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig3 {
    /// Computes Figure 3 from a report containing [`columns::TCB_SIZE`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig3, ReportError> {
        let tcb_sizes = report.try_counts(columns::TCB_SIZE)?;
        let mut bars = tld_means(report, tcb_sizes, |tld| GTLDS.contains(&tld));
        bars.sort_by_key(|bar| {
            GTLDS
                .iter()
                .position(|g| *g == bar.tld)
                .unwrap_or(usize::MAX)
        });
        let group_mean = if bars.is_empty() {
            0.0
        } else {
            bars.iter().map(|b| b.mean_tcb).sum::<f64>() / bars.len() as f64
        };
        Ok(Fig3 { bars, group_mean })
    }
    /// Renders the bar table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["gTLD", "names", "mean TCB"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                fmt_f64(bar.mean_tcb, 1),
            ]);
        }
        format!(
            "Figure 3 — Average TCB size for gTLD names\n{}\ngroup mean: {}\n",
            t.render(),
            fmt_f64(self.group_mean, 1)
        )
    }

    /// The CSV-shaped data table with `tld,names,mean_tcb` rows.
    pub fn data_table(&self) -> Table {
        tld_bar_table(&self.bars)
    }

    /// CSV rows `tld,names,mean_tcb`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

fn tld_bar_table(bars: &[TldBar]) -> Table {
    let mut t = Table::new(vec!["tld", "names", "mean_tcb"]);
    for bar in bars {
        t.row(vec![
            bar.tld.clone(),
            bar.names.to_string(),
            format!("{}", bar.mean_tcb),
        ]);
    }
    t
}

/// Figure 4: the fifteen ccTLDs with the largest mean TCBs.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The worst fifteen, descending.
    pub bars: Vec<TldBar>,
    /// Mean of per-ccTLD means over all ccTLDs (the paper's 209).
    pub group_mean: f64,
}

/// Computes Figure 4.
///
/// Thin convenience over [`Fig4::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the TCB columns.
pub fn fig4(report: &SurveyReport) -> Fig4 {
    Fig4::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig4 {
    /// Computes Figure 4 from a report containing [`columns::TCB_SIZE`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig4, ReportError> {
        let tcb_sizes = report.try_counts(columns::TCB_SIZE)?;
        let mut bars = tld_means(report, tcb_sizes, |tld| !GTLDS.contains(&tld));
        let group_mean = if bars.is_empty() {
            0.0
        } else {
            bars.iter().map(|b| b.mean_tcb).sum::<f64>() / bars.len() as f64
        };
        bars.sort_by(|a, b| b.mean_tcb.partial_cmp(&a.mean_tcb).expect("finite"));
        bars.truncate(15);
        Ok(Fig4 { bars, group_mean })
    }
    /// Renders the bar table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["ccTLD", "names", "mean TCB"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for bar in &self.bars {
            t.row(vec![
                bar.tld.clone(),
                bar.names.to_string(),
                fmt_f64(bar.mean_tcb, 1),
            ]);
        }
        format!(
            "Figure 4 — Average TCB size for the 15 most vulnerable ccTLDs\n{}\nccTLD group mean: {}\n",
            t.render(),
            fmt_f64(self.group_mean, 1)
        )
    }

    /// The CSV-shaped data table with `tld,names,mean_tcb` rows.
    pub fn data_table(&self) -> Table {
        tld_bar_table(&self.bars)
    }

    /// CSV rows `tld,names,mean_tcb`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Figure 5: CDF of the number of vulnerable TCB members.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(count, percent ≤ count)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500.
    pub top500_points: Vec<(f64, f64)>,
    /// Fraction of names with ≥1 vulnerable TCB member (the paper's 45%).
    pub frac_with_vulnerable: f64,
    /// Mean vulnerable members (the paper's 4.1).
    pub mean_vulnerable: f64,
    /// Mean for the top-500 (the paper's 7.6).
    pub top500_mean_vulnerable: f64,
}

/// Computes Figure 5.
///
/// Thin convenience over [`Fig5::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the TCB columns.
pub fn fig5(report: &SurveyReport) -> Fig5 {
    Fig5::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig5 {
    /// Computes Figure 5 from a report containing
    /// [`columns::VULNERABLE_IN_TCB`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig5, ReportError> {
        let vulnerable = report.try_counts(columns::VULNERABLE_IN_TCB)?;
        let cdf = Cdf::of_counts(vulnerable);
        let top = report.top500_of(vulnerable);
        let top_cdf = Cdf::of_counts(&top);
        Ok(Fig5 {
            all_points: cdf.plot_points(64),
            top500_points: top_cdf.plot_points(64),
            frac_with_vulnerable: cdf.fraction_above(0.0),
            mean_vulnerable: Summary::of_counts(vulnerable).mean,
            top500_mean_vulnerable: Summary::of_counts(&top).mean,
        })
    }
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["vulnerable in TCB", "all names CDF"])
            .align(vec![Align::Right, Align::Right]);
        for &(x, pct) in &self.all_points {
            t.row(vec![format!("{x:.0}"), format!("{pct:.1}%")]);
        }
        format!(
            "Figure 5 — Vulnerable nameservers in TCB (CDF)\n{}\nnames with ≥1 vulnerable: {} | mean {} (top-500 {})\n",
            t.render(),
            fmt_percent(self.frac_with_vulnerable),
            fmt_f64(self.mean_vulnerable, 1),
            fmt_f64(self.top500_mean_vulnerable, 1),
        )
    }

    /// The CSV-shaped data table with `series,x,y` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["series", "vulnerable_count", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Figure 6: names ranked by TCB safety (ascending), log-rank curve.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(rank, safety percent)` sampled log-uniformly in rank; rank 1 is
    /// the *least* safe name.
    pub points: Vec<(usize, f64)>,
    /// Number of names whose entire TCB is vulnerable (safety 0%).
    pub fully_vulnerable_names: usize,
}

/// Computes Figure 6.
///
/// Thin convenience over [`Fig6::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the TCB columns.
pub fn fig6(report: &SurveyReport) -> Fig6 {
    Fig6::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig6 {
    /// Computes Figure 6 from a report containing
    /// [`columns::SAFETY_PERCENT`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig6, ReportError> {
        let safety = report.try_floats(columns::SAFETY_PERCENT)?;
        // RankCurve sorts descending; we want ascending safety, so rank by
        // (100 - safety).
        let danger: Vec<f64> = safety.iter().map(|&s| 100.0 - s).collect();
        let curve = RankCurve::of(&danger);
        let points = curve
            .log_points(8)
            .into_iter()
            .map(|(rank, danger)| (rank, 100.0 - danger))
            .collect();
        Ok(Fig6 {
            points,
            fully_vulnerable_names: safety.iter().filter(|&&s| s <= 0.0).count(),
        })
    }
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["rank (least safe first)", "safety of TCB"])
            .align(vec![Align::Right, Align::Right]);
        for &(rank, safety) in &self.points {
            t.row(vec![rank.to_string(), format!("{safety:.1}%")]);
        }
        format!(
            "Figure 6 — Percentage of non-vulnerable nodes in TCB\n{}\nnames with fully vulnerable TCB: {}\n",
            t.render(),
            self.fully_vulnerable_names
        )
    }

    /// The CSV-shaped data table with `rank,safety_percent` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["rank", "safety_percent"]);
        for &(rank, safety) in &self.points {
            t.row(vec![rank.to_string(), format!("{safety}")]);
        }
        t
    }

    /// CSV rows `rank,safety_percent`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Figure 7: CDF of safe bottleneck servers in the min-cut.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(safe count, percent ≤ count)` for all names.
    pub all_points: Vec<(f64, f64)>,
    /// Same for the top-500.
    pub top500_points: Vec<(f64, f64)>,
    /// Fraction of names whose min-cut is entirely vulnerable (the paper's
    /// 30%).
    pub frac_fully_vulnerable_cut: f64,
    /// Fraction with exactly one safe bottleneck (the paper's extra 10%).
    pub frac_one_safe: f64,
    /// Mean min-cut size (the paper's 2.5).
    pub mean_cut_size: f64,
}

/// Computes Figure 7.
///
/// Thin convenience over [`Fig7::from_report`].
///
/// # Panics
///
/// Panics when the report lacks the min-cut columns.
pub fn fig7(report: &SurveyReport) -> Fig7 {
    Fig7::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Fig7 {
    /// Computes Figure 7 from a report containing [`columns::CUT_SIZE`]
    /// and [`columns::SAFE_IN_CUT`].
    pub fn from_report(report: &SurveyReport) -> Result<Fig7, ReportError> {
        let cut_size = report.try_counts(columns::CUT_SIZE)?;
        let safe_in_cut = report.try_counts(columns::SAFE_IN_CUT)?;
        let cuttable: Vec<usize> = cut_size
            .iter()
            .zip(safe_in_cut)
            .filter(|&(&size, _)| size > 0)
            .map(|(_, &safe)| safe)
            .collect();
        let cut_sizes: Vec<usize> = cut_size.iter().copied().filter(|&s| s > 0).collect();
        let cdf = Cdf::of_counts(&cuttable);
        let top: Vec<usize> = report
            .top500()
            .iter()
            .filter(|&&i| cut_size[i] > 0)
            .map(|&i| safe_in_cut[i])
            .collect();
        let top_cdf = Cdf::of_counts(&top);
        let n = cuttable.len().max(1) as f64;
        let zero = cuttable.iter().filter(|&&s| s == 0).count() as f64;
        let one = cuttable.iter().filter(|&&s| s == 1).count() as f64;
        Ok(Fig7 {
            all_points: cdf.plot_points(32),
            top500_points: top_cdf.plot_points(32),
            frac_fully_vulnerable_cut: zero / n,
            frac_one_safe: one / n,
            mean_cut_size: Summary::of_counts(&cut_sizes).mean,
        })
    }
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["safe bottlenecks", "all names CDF"])
            .align(vec![Align::Right, Align::Right]);
        for &(x, pct) in &self.all_points {
            t.row(vec![format!("{x:.0}"), format!("{pct:.1}%")]);
        }
        format!(
            "Figure 7 — DNS nameserver bottlenecks (safe servers in min-cut)\n{}\nfully-vulnerable min-cut: {} | exactly one safe: {} | mean cut size {}\n",
            t.render(),
            fmt_percent(self.frac_fully_vulnerable_cut),
            fmt_percent(self.frac_one_safe),
            fmt_f64(self.mean_cut_size, 1),
        )
    }

    /// The CSV-shaped data table with `series,x,y` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["series", "safe_bottlenecks", "cdf_percent"]);
        for &(x, y) in &self.all_points {
            t.row(vec!["all".to_string(), format!("{x}"), format!("{y}")]);
        }
        for &(x, y) in &self.top500_points {
            t.row(vec!["top500".to_string(), format!("{x}"), format!("{y}")]);
        }
        t
    }

    /// CSV with `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Figures 8 and 9: rank vs. names-controlled curves.
#[derive(Debug, Clone)]
pub struct RankFigure {
    /// Series name → `(rank, names controlled)` log-sampled points.
    pub series: Vec<(String, Vec<(usize, f64)>)>,
    /// Servers controlling more than 10% of surveyed names.
    pub controlling_10pct: usize,
    /// Mean and median names-controlled (non-zero servers).
    pub mean: f64,
    /// Median names-controlled.
    pub median: f64,
}

/// Computes Figure 8 (all servers + vulnerable servers).
///
/// Thin convenience over [`RankFigure::fig8_from_report`].
///
/// # Panics
///
/// Panics when no value metric was registered.
pub fn fig8(report: &SurveyReport) -> RankFigure {
    RankFigure::fig8_from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

/// Computes Figure 9 (`.edu` and `.org` servers).
///
/// Thin convenience over [`RankFigure::fig9_from_report`].
///
/// # Panics
///
/// Panics when no value metric was registered.
pub fn fig9(report: &SurveyReport) -> RankFigure {
    RankFigure::fig9_from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl RankFigure {
    /// Computes Figure 8 from a report containing [`columns::VALUE`].
    pub fn fig8_from_report(report: &SurveyReport) -> Result<RankFigure, ReportError> {
        let universe = &report.world.universe;
        let value = report.try_value_column(columns::VALUE)?;
        let all: Vec<u64> = value.ranking().iter().map(|&(_, c)| c).collect();
        let vulnerable: Vec<u64> = value
            .ranking_where(universe, |s| s.vulnerable)
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let (mean, median) = value.mean_median();
        Ok(RankFigure {
            series: vec![
                ("all".to_string(), curve_points(&all)),
                ("vulnerable".to_string(), curve_points(&vulnerable)),
            ],
            controlling_10pct: value.servers_controlling_more_than(0.10),
            mean,
            median,
        })
    }

    /// Computes Figure 9 from a report containing [`columns::VALUE`].
    pub fn fig9_from_report(report: &SurveyReport) -> Result<RankFigure, ReportError> {
        let universe = &report.world.universe;
        let value = report.try_value_column(columns::VALUE)?;
        let edu: Vec<u64> = value
            .ranking_in_tld(universe, &name("edu"))
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let org: Vec<u64> = value
            .ranking_in_tld(universe, &name("org"))
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let (mean, median) = value.mean_median();
        Ok(RankFigure {
            series: vec![
                ("edu".to_string(), curve_points(&edu)),
                ("org".to_string(), curve_points(&org)),
            ],
            controlling_10pct: value.servers_controlling_more_than(0.10),
            mean,
            median,
        })
    }
}

fn curve_points(descending_counts: &[u64]) -> Vec<(usize, f64)> {
    let values: Vec<f64> = descending_counts.iter().map(|&c| c as f64).collect();
    RankCurve { descending: values }.log_points(8)
}

impl RankFigure {
    /// Renders all series.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for (label, points) in &self.series {
            let mut t = Table::new(vec!["rank", "names controlled"])
                .align(vec![Align::Right, Align::Right]);
            for &(rank, count) in points {
                t.row(vec![rank.to_string(), format!("{count:.0}")]);
            }
            out.push_str(&format!("series: {label}\n{}\n", t.render()));
        }
        out.push_str(&format!(
            "servers controlling >10% of names: {} | mean {} median {}\n",
            self.controlling_10pct,
            fmt_f64(self.mean, 1),
            fmt_f64(self.median, 1),
        ));
        out
    }

    /// The CSV-shaped data table with `series,rank,names_controlled` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["series", "rank", "names_controlled"]);
        for (label, points) in &self.series {
            for &(rank, count) in points {
                t.row(vec![label.clone(), rank.to_string(), format!("{count}")]);
            }
        }
        t
    }

    /// CSV with `series,rank,names_controlled` rows.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// The paper's headline inline statistics (abstract, §3, §5).
#[derive(Debug, Clone)]
pub struct Headline {
    /// Surveyed names.
    pub names: usize,
    /// Distinct TLDs among surveyed names.
    pub tlds: usize,
    /// Discovered (non-root) nameservers.
    pub servers: usize,
    /// Vulnerable servers.
    pub vulnerable_servers: usize,
    /// Mean TCB size (paper: 46).
    pub mean_tcb: f64,
    /// Median TCB size (paper: 26).
    pub median_tcb: f64,
    /// Mean nameowner-administered servers (paper: 2.2).
    pub mean_nameowner: f64,
    /// Names with ≥1 vulnerable TCB member (paper: 264,599 ≈ 45%).
    pub names_with_vulnerable_dep: usize,
    /// Fraction of names with ≥1 vulnerable TCB member.
    pub frac_with_vulnerable_dep: f64,
    /// Fraction of names with an all-vulnerable min-cut (paper: 30%).
    pub frac_hijackable: f64,
    /// Mean min-cut size (paper: 2.5).
    pub mean_cut: f64,
    /// Servers controlling > 10% of names (paper: ~125).
    pub critical_servers: usize,
    /// How many critical servers are gTLD registry boxes (paper: ~30).
    pub critical_gtld: usize,
    /// How many critical servers are vulnerable (paper: ~12).
    pub critical_vulnerable: usize,
    /// How many critical servers live under .edu (paper: ~25).
    pub critical_edu: usize,
}

/// Computes the headline statistics.
///
/// Thin convenience over [`Headline::from_report`].
///
/// # Panics
///
/// Panics when the report lacks any of the six classic columns.
pub fn headline(report: &SurveyReport) -> Headline {
    Headline::from_report(report).unwrap_or_else(|e| panic!("{e}"))
}

impl Headline {
    /// Computes the headline statistics from a report containing the six
    /// classic columns (TCB, min-cut and value).
    pub fn from_report(report: &SurveyReport) -> Result<Headline, ReportError> {
        let universe = &report.world.universe;
        let tcb_sizes = report.try_counts(columns::TCB_SIZE)?;
        let nameowner = report.try_counts(columns::NAMEOWNER)?;
        let vulnerable_in_tcb = report.try_counts(columns::VULNERABLE_IN_TCB)?;
        let cut_size = report.try_counts(columns::CUT_SIZE)?;
        let safe_in_cut = report.try_counts(columns::SAFE_IN_CUT)?;
        let value = report.try_value_column(columns::VALUE)?;
        let tlds: std::collections::BTreeSet<String> = report
            .world
            .names
            .iter()
            .map(|n| n.tld.to_string())
            .collect();
        let vulnerable_servers = universe
            .server_ids()
            .filter(|&s| universe.server(s).vulnerable && !universe.server(s).is_root)
            .count();
        let servers = universe
            .server_ids()
            .filter(|&s| !universe.server(s).is_root)
            .count();
        let names_with_vulnerable_dep = vulnerable_in_tcb.iter().filter(|&&v| v > 0).count();
        let cuttable = cut_size.iter().filter(|&&c| c > 0).count().max(1);
        let hijackable = cut_size
            .iter()
            .zip(safe_in_cut)
            .filter(|&(&size, &safe)| size > 0 && safe == 0)
            .count();
        let threshold = (value.names_seen() as f64 * 0.10).floor() as u64;
        let critical: Vec<_> = value
            .ranking()
            .into_iter()
            .filter(|&(_, c)| c > threshold)
            .collect();
        let is_gtld_box = |server_name: &DnsName| {
            server_name.is_subdomain_of(&name("gtld-servers.net"))
                || server_name.is_subdomain_of(&name("nstld.com"))
                || GTLDS
                    .iter()
                    .any(|g| server_name.is_subdomain_of(&name(&format!("{g}-servers.net"))))
        };
        let critical_gtld = critical
            .iter()
            .filter(|&&(s, _)| is_gtld_box(&universe.server(s).name))
            .count();
        let critical_vulnerable = critical
            .iter()
            .filter(|&&(s, _)| universe.server(s).vulnerable)
            .count();
        let critical_edu = critical
            .iter()
            .filter(|&&(s, _)| universe.server(s).name.is_subdomain_of(&name("edu")))
            .count();
        let cut_sizes: Vec<usize> = cut_size.iter().copied().filter(|&c| c > 0).collect();
        Ok(Headline {
            names: report.world.names.len(),
            tlds: tlds.len(),
            servers,
            vulnerable_servers,
            mean_tcb: Summary::of_counts(tcb_sizes).mean,
            median_tcb: Summary::of_counts(tcb_sizes).median,
            mean_nameowner: Summary::of_counts(nameowner).mean,
            names_with_vulnerable_dep,
            frac_with_vulnerable_dep: names_with_vulnerable_dep as f64
                / tcb_sizes.len().max(1) as f64,
            frac_hijackable: hijackable as f64 / cuttable as f64,
            mean_cut: Summary::of_counts(&cut_sizes).mean,
            critical_servers: critical.len(),
            critical_gtld,
            critical_vulnerable,
            critical_edu,
        })
    }

    /// The `(statistic, measured, paper)` rows behind both renderings.
    fn stat_rows(&self) -> Vec<[String; 3]> {
        vec![
            [
                "surveyed names".to_string(),
                self.names.to_string(),
                "593160".to_string(),
            ],
            ["TLDs".to_string(), self.tlds.to_string(), "196".to_string()],
            [
                "nameservers".to_string(),
                self.servers.to_string(),
                "166771".to_string(),
            ],
            [
                "vulnerable servers".to_string(),
                format!(
                    "{} ({})",
                    self.vulnerable_servers,
                    fmt_percent(self.vulnerable_servers as f64 / self.servers.max(1) as f64)
                ),
                "27141 (16.3%)".to_string(),
            ],
            [
                "mean TCB".to_string(),
                fmt_f64(self.mean_tcb, 1),
                "46".to_string(),
            ],
            [
                "median TCB".to_string(),
                fmt_f64(self.median_tcb, 0),
                "26".to_string(),
            ],
            [
                "nameowner-administered".to_string(),
                fmt_f64(self.mean_nameowner, 1),
                "2.2".to_string(),
            ],
            [
                "names w/ vulnerable dep".to_string(),
                format!(
                    "{} ({})",
                    self.names_with_vulnerable_dep,
                    fmt_percent(self.frac_with_vulnerable_dep)
                ),
                "264599 (45%)".to_string(),
            ],
            [
                "completely hijackable".to_string(),
                fmt_percent(self.frac_hijackable),
                "30%".to_string(),
            ],
            [
                "mean min-cut".to_string(),
                fmt_f64(self.mean_cut, 1),
                "2.5".to_string(),
            ],
            [
                "servers controlling >10%".to_string(),
                self.critical_servers.to_string(),
                "~125".to_string(),
            ],
            [
                "  of which gTLD registry".to_string(),
                self.critical_gtld.to_string(),
                "~30".to_string(),
            ],
            [
                "  of which vulnerable".to_string(),
                self.critical_vulnerable.to_string(),
                "~12".to_string(),
            ],
            [
                "  of which .edu".to_string(),
                self.critical_edu.to_string(),
                "~25".to_string(),
            ],
        ]
    }

    /// Renders the headline table with the paper's values alongside.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["statistic", "measured", "paper"]).align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        format!("Headline statistics (paper abstract / §3)\n{}", t.render())
    }

    /// The CSV-shaped data table with `statistic,measured,paper` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["statistic", "measured", "paper"]);
        for row in self.stat_rows() {
            let mut row = row.to_vec();
            // The text rendering indents sub-rows; the data table keys
            // them plainly.
            row[0] = row[0].trim_start().to_string();
            t.row(row);
        }
        t
    }

    /// CSV rows `statistic,measured,paper`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Summary of the misconfiguration-audit columns (Pappas et al. checks).
#[derive(Debug, Clone)]
pub struct MisconfigSummary {
    /// Surveyed names.
    pub names: usize,
    /// Names whose own zone has a single nameserver.
    pub single_server: usize,
    /// Names whose zone's NS set shares one operator domain.
    pub single_operator: usize,
    /// Names whose zone delegates to an unresolvable NS.
    pub unresolvable_ns: usize,
    /// Names whose glueless nesting exceeds the metric's threshold.
    pub deep_dependency: usize,
    /// Deepest observed glueless nesting.
    pub max_depth: usize,
}

impl MisconfigSummary {
    /// Computes the summary from a report containing
    /// [`columns::MISCONFIG_FLAGS`] and [`columns::MISCONFIG_DEPTH`].
    pub fn from_report(report: &SurveyReport) -> Result<MisconfigSummary, ReportError> {
        let flags = report.try_counts(columns::MISCONFIG_FLAGS)?;
        let depth = report.try_counts(columns::MISCONFIG_DEPTH)?;
        let count_flag = |bit: usize| flags.iter().filter(|&&f| f & bit != 0).count();
        Ok(MisconfigSummary {
            names: flags.len(),
            single_server: count_flag(FLAG_SINGLE_SERVER),
            single_operator: count_flag(FLAG_SINGLE_OPERATOR),
            unresolvable_ns: count_flag(FLAG_UNRESOLVABLE_NS),
            deep_dependency: count_flag(FLAG_DEEP_DEPENDENCY),
            max_depth: depth.iter().copied().max().unwrap_or(0),
        })
    }

    fn stat_rows(&self) -> Vec<[String; 2]> {
        vec![
            ["surveyed names".to_string(), self.names.to_string()],
            [
                "single-server zone".to_string(),
                self.single_server.to_string(),
            ],
            [
                "single-operator redundancy".to_string(),
                self.single_operator.to_string(),
            ],
            [
                "unresolvable NS".to_string(),
                self.unresolvable_ns.to_string(),
            ],
            [
                "deep glueless nesting".to_string(),
                self.deep_dependency.to_string(),
            ],
            ["max observed depth".to_string(), self.max_depth.to_string()],
        ]
    }

    /// Renders the audit summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["finding", "names"]).align(vec![Align::Left, Align::Right]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        format!(
            "Misconfiguration audit (Pappas et al. checks, per surveyed name)\n{}",
            t.render()
        )
    }

    /// The CSV-shaped data table with `finding,names` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["finding", "names"]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        t
    }

    /// CSV rows `finding,names`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Summary of the DNSSEC-coverage columns (the §5 argument quantified).
#[derive(Debug, Clone)]
pub struct DnssecSummary {
    /// Surveyed names.
    pub names: usize,
    /// Mean signed fraction of each name's TCB zones.
    pub mean_signed_fraction: f64,
    /// Names whose own chain of trust is unbroken.
    pub chain_protected: usize,
}

impl DnssecSummary {
    /// Computes the summary from a report containing
    /// [`columns::DNSSEC_SIGNED_FRACTION`] and
    /// [`columns::DNSSEC_CHAIN_PROTECTED`].
    pub fn from_report(report: &SurveyReport) -> Result<DnssecSummary, ReportError> {
        let fraction = report.try_floats(columns::DNSSEC_SIGNED_FRACTION)?;
        let protected = report.try_counts(columns::DNSSEC_CHAIN_PROTECTED)?;
        Ok(DnssecSummary {
            names: fraction.len(),
            mean_signed_fraction: fraction.iter().sum::<f64>() / fraction.len().max(1) as f64,
            chain_protected: protected.iter().filter(|&&p| p > 0).count(),
        })
    }

    fn stat_rows(&self) -> Vec<[String; 2]> {
        vec![
            ["surveyed names".to_string(), self.names.to_string()],
            [
                "mean signed fraction of TCB zones".to_string(),
                fmt_percent(self.mean_signed_fraction),
            ],
            [
                "chain-protected names".to_string(),
                self.chain_protected.to_string(),
            ],
        ]
    }

    /// Renders the coverage summary table (§5: signing shrinks the
    /// forgeable surface; the closure — the deniable surface — is
    /// unchanged).
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["statistic", "value"]).align(vec![Align::Left, Align::Right]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        format!(
            "DNSSEC coverage (root+TLD islands-of-security rollout)\n{}",
            t.render()
        )
    }

    /// The CSV-shaped data table with `statistic,value` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["statistic", "value"]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        t
    }

    /// CSV rows `statistic,value`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

/// Summary of the zombie-delegation columns: how much of the surveyed
/// namespace leans on dead infrastructure
/// ([`perils_core::ZombieDelegationMetric`]).
#[derive(Debug, Clone)]
pub struct ZombieSummary {
    /// Surveyed names.
    pub names: usize,
    /// Names with at least one dead server in their TCB.
    pub names_with_dead_dep: usize,
    /// Names resolvable only through a zombie delegation.
    pub orphaned_names: usize,
    /// Mean dead TCB members over names with any.
    pub mean_dead_among_affected: f64,
    /// Largest zombie-zone count seen in one closure.
    pub max_zombie_zones: usize,
}

impl ZombieSummary {
    /// Computes the summary from a report containing the three
    /// `zombie_*` columns.
    pub fn from_report(report: &SurveyReport) -> Result<ZombieSummary, ReportError> {
        let dead = report.try_counts(columns::ZOMBIE_DEAD_IN_TCB)?;
        let zones = report.try_counts(columns::ZOMBIE_ZONES)?;
        let orphaned = report.try_counts(columns::ZOMBIE_ORPHANED)?;
        let affected: Vec<usize> = dead.iter().copied().filter(|&d| d > 0).collect();
        Ok(ZombieSummary {
            names: dead.len(),
            names_with_dead_dep: affected.len(),
            orphaned_names: orphaned.iter().filter(|&&o| o > 0).count(),
            mean_dead_among_affected: Summary::of_counts(&affected).mean,
            max_zombie_zones: zones.iter().copied().max().unwrap_or(0),
        })
    }

    fn stat_rows(&self) -> Vec<[String; 2]> {
        vec![
            ["surveyed names".to_string(), self.names.to_string()],
            [
                "names w/ dead dependency".to_string(),
                format!(
                    "{} ({})",
                    self.names_with_dead_dep,
                    fmt_percent(self.names_with_dead_dep as f64 / self.names.max(1) as f64)
                ),
            ],
            [
                "orphaned names (zombie chain)".to_string(),
                self.orphaned_names.to_string(),
            ],
            [
                "mean dead TCB members (affected)".to_string(),
                fmt_f64(self.mean_dead_among_affected, 1),
            ],
            [
                "max zombie zones in one closure".to_string(),
                self.max_zombie_zones.to_string(),
            ],
        ]
    }

    /// Renders the zombie-delegation summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["statistic", "value"]).align(vec![Align::Left, Align::Right]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        format!(
            "Zombie delegations (dead-infrastructure dependencies)\n{}",
            t.render()
        )
    }

    /// The CSV-shaped data table with `statistic,value` rows.
    pub fn data_table(&self) -> Table {
        let mut t = Table::new(vec!["statistic", "value"]);
        for row in self.stat_rows() {
            t.row(row.to_vec());
        }
        t
    }

    /// CSV rows `statistic,value`.
    pub fn to_csv(&self) -> String {
        self.data_table().render_csv()
    }
}

// ---------------------------------------------------------------------------
// Figure-trait adapters: each artifact as a registrable figure.

macro_rules! classic_figure {
    ($adapter:ident, $id:literal, $title:literal, $required:expr, $build:expr) => {
        #[doc = concat!("The `", $id, "` figure as a registrable [`Figure`].")]
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $adapter;

        impl Figure for $adapter {
            fn id(&self) -> &str {
                $id
            }

            fn title(&self) -> &str {
                $title
            }

            fn required_columns(&self) -> &[&str] {
                $required
            }

            fn build(&self, report: &SurveyReport) -> Result<RenderedFigure, FigureError> {
                #[allow(clippy::redundant_closure_call)]
                let (text, data) = ($build)(report)?;
                Ok(RenderedFigure::new($id, $title, text, data))
            }
        }
    };
}

classic_figure!(
    HeadlineFigure,
    "headline",
    "Headline statistics (paper abstract / §3)",
    &[
        columns::TCB_SIZE,
        columns::NAMEOWNER,
        columns::VULNERABLE_IN_TCB,
        columns::CUT_SIZE,
        columns::SAFE_IN_CUT,
        columns::VALUE,
    ],
    |report| {
        let h = Headline::from_report(report)?;
        Ok::<_, FigureError>((h.render(), h.data_table()))
    }
);

classic_figure!(
    Fig2Figure,
    "fig2",
    "Figure 2 — Size of TCB (CDF)",
    &[columns::TCB_SIZE],
    |report| {
        let f = Fig2::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig3Figure,
    "fig3",
    "Figure 3 — Average TCB size for gTLD names",
    &[columns::TCB_SIZE],
    |report| {
        let f = Fig3::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig4Figure,
    "fig4",
    "Figure 4 — Average TCB size for the 15 most vulnerable ccTLDs",
    &[columns::TCB_SIZE],
    |report| {
        let f = Fig4::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig5Figure,
    "fig5",
    "Figure 5 — Vulnerable nameservers in TCB (CDF)",
    &[columns::VULNERABLE_IN_TCB],
    |report| {
        let f = Fig5::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig6Figure,
    "fig6",
    "Figure 6 — Percentage of non-vulnerable nodes in TCB",
    &[columns::SAFETY_PERCENT],
    |report| {
        let f = Fig6::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig7Figure,
    "fig7",
    "Figure 7 — DNS nameserver bottlenecks (safe servers in min-cut)",
    &[columns::CUT_SIZE, columns::SAFE_IN_CUT],
    |report| {
        let f = Fig7::from_report(report)?;
        Ok::<_, FigureError>((f.render(), f.data_table()))
    }
);

classic_figure!(
    Fig8Figure,
    "fig8",
    "Figure 8 — Number of names controlled by nameservers",
    &[columns::VALUE],
    |report| {
        let f = RankFigure::fig8_from_report(report)?;
        Ok::<_, FigureError>((
            f.render("Figure 8 — Number of names controlled by nameservers"),
            f.data_table(),
        ))
    }
);

classic_figure!(
    Fig9Figure,
    "fig9",
    "Figure 9 — Names controlled by .edu and .org nameservers",
    &[columns::VALUE],
    |report| {
        let f = RankFigure::fig9_from_report(report)?;
        Ok::<_, FigureError>((
            f.render("Figure 9 — Names controlled by .edu and .org nameservers"),
            f.data_table(),
        ))
    }
);

classic_figure!(
    MisconfigFigure,
    "misconfig",
    "Misconfiguration audit (Pappas et al. checks, per surveyed name)",
    &[columns::MISCONFIG_FLAGS, columns::MISCONFIG_DEPTH],
    |report| {
        let s = MisconfigSummary::from_report(report)?;
        Ok::<_, FigureError>((s.render(), s.data_table()))
    }
);

classic_figure!(
    DnssecFigure,
    "dnssec",
    "DNSSEC coverage (root+TLD islands-of-security rollout)",
    &[
        columns::DNSSEC_SIGNED_FRACTION,
        columns::DNSSEC_CHAIN_PROTECTED,
    ],
    |report| {
        let s = DnssecSummary::from_report(report)?;
        Ok::<_, FigureError>((s.render(), s.data_table()))
    }
);

classic_figure!(
    ZombieFigure,
    "zombie",
    "Zombie delegations (dead-infrastructure dependencies)",
    &[
        columns::ZOMBIE_DEAD_IN_TCB,
        columns::ZOMBIE_ZONES,
        columns::ZOMBIE_ORPHANED,
    ],
    |report| {
        let s = ZombieSummary::from_report(report)?;
        Ok::<_, FigureError>((s.render(), s.data_table()))
    }
);

impl FigureRegistry {
    /// The paper's nine artifacts (headline plus Figures 2–9), in
    /// presentation order.
    pub fn classic() -> FigureRegistry {
        FigureRegistry::new()
            .register(HeadlineFigure)
            .register(Fig2Figure)
            .register(Fig3Figure)
            .register(Fig4Figure)
            .register(Fig5Figure)
            .register(Fig6Figure)
            .register(Fig7Figure)
            .register(Fig8Figure)
            .register(Fig9Figure)
    }

    /// The classic nine plus the extension-metric summaries
    /// (misconfiguration audit and DNSSEC coverage) — the renderers
    /// matching `Engine::with_extended_metrics`.
    pub fn extended() -> FigureRegistry {
        FigureRegistry::classic()
            .register(MisconfigFigure)
            .register(DnssecFigure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_survey, SurveyConfig};

    fn tiny_report() -> SurveyReport {
        run_survey(&SurveyConfig::tiny(29))
    }

    #[test]
    fn all_figures_compute_and_render() {
        let report = tiny_report();
        let f2 = fig2(&report);
        assert!(f2.all.mean > 0.0);
        assert!(f2.render().contains("Figure 2"));
        assert!(f2.to_csv().starts_with("series,"));

        let f3 = fig3(&report);
        assert!(!f3.bars.is_empty());
        assert!(f3.render().contains("Figure 3"));

        let f4 = fig4(&report);
        assert!(f4.bars.len() <= 15);
        assert!(f4.render().contains("Figure 4"));

        let f5 = fig5(&report);
        assert!(f5.render().contains("Figure 5"));
        assert!((0.0..=1.0).contains(&f5.frac_with_vulnerable));

        let f6 = fig6(&report);
        assert!(f6.render().contains("Figure 6"));
        assert!(!f6.points.is_empty());

        let f7 = fig7(&report);
        assert!(f7.render().contains("Figure 7"));
        assert!((0.0..=1.0).contains(&f7.frac_fully_vulnerable_cut));

        let f8 = fig8(&report);
        assert_eq!(f8.series.len(), 2);
        assert!(f8.render("Figure 8").contains("series: all"));

        let f9 = fig9(&report);
        assert!(f9.render("Figure 9").contains("series: edu"));

        let h = headline(&report);
        assert!(h.render().contains("mean TCB"));
        assert_eq!(h.names, report.world.names.len());
    }

    #[test]
    fn fig3_order_matches_paper_axis() {
        let report = tiny_report();
        let f3 = fig3(&report);
        let order: Vec<&str> = f3.bars.iter().map(|b| b.tld.as_str()).collect();
        // Bars must appear in the paper's x-axis order (subset thereof).
        let mut expected = GTLDS.iter();
        for tld in order {
            assert!(expected.any(|g| *g == tld), "gTLD {tld} out of paper order");
        }
    }

    #[test]
    fn fig4_descending() {
        let report = tiny_report();
        let f4 = fig4(&report);
        for w in f4.bars.windows(2) {
            assert!(w[0].mean_tcb >= w[1].mean_tcb);
        }
    }

    #[test]
    fn fig7_fractions_consistent() {
        let report = tiny_report();
        let f7 = fig7(&report);
        assert!(f7.frac_fully_vulnerable_cut + f7.frac_one_safe <= 1.0 + 1e-9);
        assert!(f7.mean_cut_size >= 1.0);
    }

    #[test]
    fn headline_consistency() {
        let report = tiny_report();
        let h = headline(&report);
        assert!(h.vulnerable_servers <= h.servers);
        assert!(h.critical_gtld <= h.critical_servers);
        assert!(h.critical_vulnerable <= h.critical_servers);
        assert!((0.0..=1.0).contains(&h.frac_with_vulnerable_dep));
        assert!((0.0..=1.0).contains(&h.frac_hijackable));
    }
}
