//! Property tests of the streaming engine pass: for random synthetic
//! seeds, `Engine::run_batched` must produce a `SurveyReport` identical to
//! `Engine::run` at every tested batch size — per-name columns
//! element-for-element, the value aggregate ranking-for-ranking — and the
//! report must be invariant in the worker thread count at the same time.

use proptest::prelude::*;

use perils_core::metric::MetricColumn;
use perils_survey::engine::{Engine, SurveyReport, SyntheticSource};
use perils_survey::params::TopologyParams;
use std::num::NonZeroUsize;

/// Small-but-structured generator parameters: a few hundred names over
/// every hosting style, deterministic in `seed`.
fn params(seed: u64) -> TopologyParams {
    TopologyParams::tiny(seed)
}

fn assert_reports_equal(a: &SurveyReport, b: &SurveyReport, what: &str) -> Result<(), String> {
    let ids_a: Vec<&str> = a.column_ids().collect();
    let ids_b: Vec<&str> = b.column_ids().collect();
    prop_assert_eq!(&ids_a, &ids_b, "column sets differ ({})", what);
    for id in ids_a {
        match (a.column(id).unwrap(), b.column(id).unwrap()) {
            (MetricColumn::Counts(x), MetricColumn::Counts(y)) => {
                prop_assert_eq!(x, y, "{} differs ({})", id, what)
            }
            (MetricColumn::Floats(x), MetricColumn::Floats(y)) => {
                prop_assert_eq!(x, y, "{} differs ({})", id, what)
            }
            (MetricColumn::Value(x), MetricColumn::Value(y)) => {
                prop_assert_eq!(x.names_seen(), y.names_seen(), "{} ({})", id, what);
                prop_assert_eq!(x.ranking(), y.ranking(), "{} ranking ({})", id, what);
            }
            _ => return Err(format!("{id} changed column kind ({what})")),
        }
    }
    prop_assert_eq!(&a.exact_sample, &b.exact_sample, "exact sample ({})", what);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// `run_batched` ≡ `run` for batch sizes {1, 7, 64, all}, re-pinned on
    /// the view-based closure representation over the full metric set
    /// (built-ins + misconfig + DNSSEC + zombie), so every view-path
    /// measurement — including the min-cut metric's per-chain cache, whose
    /// shards live only for one batch — is covered.
    #[test]
    fn batched_report_identical_to_unbatched(seed in 0u64..10_000) {
        let engine = Engine::with_extended_metrics()
            .register(perils_core::ZombieDelegationMetric)
            .exact_hijack_sample(5);
        let baseline = engine.run(SyntheticSource { params: params(seed) });
        let n = baseline.world.names.len();
        prop_assert!(n > 0);
        for batch in [1usize, 7, 64, n] {
            let batched = engine.run_batched(
                SyntheticSource { params: params(seed) },
                NonZeroUsize::new(batch).expect("non-zero batch"),
            );
            assert_reports_equal(&baseline, &batched, &format!("batch {batch}"))?;
        }
    }

    /// Batching composes with thread-count invariance: a single-threaded
    /// unbatched run equals a multi-threaded batched run.
    #[test]
    fn batching_and_threading_commute(seed in 0u64..10_000, batch in 1usize..96) {
        let one = Engine::with_builtin_metrics()
            .threads(NonZeroUsize::new(1))
            .run(SyntheticSource { params: params(seed) });
        let many = Engine::with_builtin_metrics()
            .threads(NonZeroUsize::new(8))
            .run_batched(
                SyntheticSource { params: params(seed) },
                NonZeroUsize::new(batch).expect("non-zero batch"),
            );
        assert_reports_equal(&one, &many, &format!("1-thread vs 8-thread batch {batch}"))?;
    }
}
