//! The snapshot contract, property-tested: for random synthetic seeds a
//! build→save→load cycle must reconstruct the world *exactly* — universe,
//! dependency index, lint facts, and name list all structurally equal —
//! and every downstream consumer (figure rendering, the lint engine) must
//! produce byte-identical output from the loaded world. Corrupt archives
//! (any truncation, any bit flip) must surface a typed `SnapshotError`,
//! never a panic or a silently different world.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use perils_core::lint::{RuleRegistry, SeverityOverrides};
use perils_core::{DependencyIndex, LintIndex};
use perils_survey::engine::{Engine, SyntheticSource, WorldSource};
use perils_survey::lint::{run_lint_with, LintFormat};
use perils_survey::params::TopologyParams;
use perils_survey::render::FigureRegistry;
use perils_survey::snapshot::{load_world_bytes, world_archive_bytes};
use perils_survey::AnalysisWorld;

/// Generates the same tiny world twice (the source is deterministic in
/// the seed), so one copy can be archived while the other is the oracle.
fn world(seed: u64) -> AnalysisWorld {
    SyntheticSource {
        params: TopologyParams::tiny(seed),
    }
    .load()
}

/// Renders every registered figure from a report into one byte string.
fn figure_bytes(engine: &Engine, world: AnalysisWorld, index: &DependencyIndex) -> Vec<u8> {
    let report = engine.run_world_indexed(world, index);
    let mut out = Vec::new();
    for outcome in FigureRegistry::extended().build_all(&report) {
        if let perils_survey::render::FigureOutcome::Rendered(figure) = outcome {
            out.extend_from_slice(figure.id().as_bytes());
            out.extend_from_slice(figure.json().as_bytes());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Save → load reconstructs the exact world, and figures + lint
    /// output are byte-identical when recomputed from the loaded copy.
    #[test]
    fn build_save_load_is_byte_identical(seed in 0u64..10_000) {
        let original = world(seed);
        let index = DependencyIndex::build(&original.universe);
        let lint = LintIndex::build(&original.universe);

        let bytes = world_archive_bytes(
            &original.universe,
            &index,
            &lint,
            &original.names,
            &original.top500,
            None,
        );
        let loaded = load_world_bytes(bytes).expect("intact archive loads");

        // Structural equality of everything the archive carries.
        prop_assert!(loaded.universe == original.universe, "universe differs");
        prop_assert!(loaded.index == index, "dependency index differs");
        prop_assert!(loaded.lint == lint, "lint facts differ");
        prop_assert_eq!(&loaded.names, &original.names, "name list differs");
        prop_assert_eq!(&loaded.top500, &original.top500, "top500 differs");

        // Figures recomputed from the loaded world are byte-identical.
        let engine = Engine::with_extended_metrics();
        let fig_orig = figure_bytes(&engine, original, &index);
        let fig_loaded = figure_bytes(
            &engine,
            AnalysisWorld {
                universe: loaded.universe.clone(),
                names: loaded.names.to_vec(),
                top500: loaded.top500.clone(),
            },
            &loaded.index,
        );
        prop_assert_eq!(fig_orig, fig_loaded, "figure bytes differ");

        // Lint output from the loaded index/facts is byte-identical.
        let registry = RuleRegistry::builtin();
        let overrides = SeverityOverrides::new();
        let targets: Vec<_> = loaded.names.iter().map(|n| n.name.clone()).collect();
        let report_orig = run_lint_with(
            &loaded.universe, &targets, &registry, &overrides, None, &index, &lint,
        );
        let report_loaded = run_lint_with(
            &loaded.universe, &targets, &registry, &overrides, None,
            &loaded.index, &loaded.lint,
        );
        prop_assert_eq!(
            report_orig.emit(LintFormat::Json),
            report_loaded.emit(LintFormat::Json),
            "lint JSON differs"
        );
    }
}

/// Every truncation of a real archive is a typed error, never a panic
/// and never a silently loaded world.
#[test]
fn every_truncation_is_a_typed_error() {
    let original = world(42);
    let index = DependencyIndex::build(&original.universe);
    let lint = LintIndex::build(&original.universe);
    let bytes = world_archive_bytes(
        &original.universe,
        &index,
        &lint,
        &original.names,
        &original.top500,
        Some(("{\"epoch\":1,\"figures\":[]}", 0)),
    );
    load_world_bytes(bytes.clone()).expect("intact archive loads");

    for len in 0..bytes.len() {
        let err = load_world_bytes(bytes[..len].to_vec());
        assert!(
            err.is_err(),
            "truncation to {len} of {} bytes loaded anyway",
            bytes.len()
        );
    }
}

/// Bit flips anywhere in the archive are caught — by the header checks,
/// the TOC validation, the section checksums, or the per-type decoders —
/// and always as a typed error, never a panic.
#[test]
fn bit_flips_are_always_typed_errors() {
    let original = world(7);
    let index = DependencyIndex::build(&original.universe);
    let lint = LintIndex::build(&original.universe);
    let bytes = world_archive_bytes(
        &original.universe,
        &index,
        &lint,
        &original.names,
        &original.top500,
        None,
    );

    // Every byte of the header + TOC, then a stride through the payload:
    // single-bit corruption must never load. (The container checksums
    // make any payload flip detectable, so Ok(_) is a real bug, not an
    // acceptable escape.)
    let dense = 512.min(bytes.len());
    let positions = (0..dense).chain((dense..bytes.len()).step_by(211));
    for pos in positions {
        for bit in 0..8u8 {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert!(
                load_world_bytes(corrupt).is_err(),
                "flip of bit {bit} at byte {pos} loaded anyway"
            );
        }
    }
}
