//! Backend-equivalence contract, property-tested: for random synthetic
//! seeds, the paged backend must reconstruct the *byte-identical* world
//! the heap backend sees — across page sizes spanning two orders of
//! magnitude and cache budgets squeezed all the way down to two pages
//! (the `ByteStore` floor, where every bulk read thrashes). Equality is
//! proven at the byte level by re-encoding each loaded world and
//! comparing archives. Truncations landing mid-page must surface a typed
//! `SnapshotError` from the paged open, never a panic and never a world.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use perils_core::{DependencyIndex, LintIndex};
use perils_survey::engine::WorldSource;
use perils_survey::params::TopologyParams;
use perils_survey::snapshot::world_archive_bytes;
use perils_survey::{LoadedWorld, SnapshotBackend, SyntheticSource};

/// Page sizes under test: well below, at, and well above the OS page.
const PAGE_SIZES: [usize; 3] = [512, 4096, 65536];

/// Writes `bytes` to a unique temp file and returns its path (cleaned up
/// by [`TempArchive::drop`], so failing tests don't litter `/tmp`).
struct TempArchive(std::path::PathBuf);

impl TempArchive {
    fn new(bytes: &[u8], tag: &str) -> TempArchive {
        let path = std::env::temp_dir().join(format!(
            "perils_backend_eq_{}_{tag}.psa",
            std::process::id()
        ));
        std::fs::write(&path, bytes).expect("write temp archive");
        TempArchive(path)
    }
}

impl Drop for TempArchive {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Re-encodes a loaded world into archive bytes — the byte-level
/// fingerprint two backends must agree on. (The encoder is
/// deterministic, so equal fingerprints mean equal worlds down to every
/// label byte and rank.)
fn fingerprint(loaded: &LoadedWorld) -> Vec<u8> {
    world_archive_bytes(
        &loaded.universe,
        &loaded.index,
        &loaded.lint,
        &loaded.names.to_vec(),
        &loaded.top500,
        loaded
            .figures_json
            .as_deref()
            .map(|j| (j, loaded.figures_rendered)),
    )
}

fn archive_bytes(seed: u64) -> Vec<u8> {
    let world = SyntheticSource {
        params: TopologyParams::tiny(seed),
    }
    .load();
    let index = DependencyIndex::build(&world.universe);
    let lint = LintIndex::build(&world.universe);
    world_archive_bytes(
        &world.universe,
        &index,
        &lint,
        &world.names,
        &world.top500,
        Some(("{\"epoch\":7,\"figures\":[]}", 0)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Heap and paged decodes agree byte-for-byte for every page size
    /// and for budgets from a quarter of the archive down to two pages.
    #[test]
    fn heap_and_paged_worlds_are_byte_identical(seed in 0u64..10_000) {
        let bytes = archive_bytes(seed);
        let archive = TempArchive::new(&bytes, &format!("prop{seed}"));

        let heap = perils_survey::load_world_with(&archive.0, SnapshotBackend::Heap)
            .expect("heap load");
        let heap_print = fingerprint(&heap);

        for page_bytes in PAGE_SIZES {
            // Two pages is the cache floor: every read_range larger than
            // one page evicts, so lazy name decodes thrash honestly.
            let budgets = [2 * page_bytes as u64, (bytes.len() as u64 / 4).max(1)];
            for budget_bytes in budgets {
                let paged = perils_survey::load_world_with(
                    &archive.0,
                    SnapshotBackend::Paged { page_bytes, budget_bytes },
                )
                .expect("paged load");
                prop_assert_eq!(
                    &fingerprint(&paged),
                    &heap_print,
                    "paged world (page {} B, budget {} B) differs from heap",
                    page_bytes,
                    budget_bytes
                );
                // Spot-check the lazy accessors against the heap table,
                // including the last record (the tail-page case).
                prop_assert_eq!(paged.names.len(), heap.names.len());
                if !paged.names.is_empty() {
                    let last = paged.names.len() - 1;
                    prop_assert_eq!(paged.names.get(0), heap.names.get(0));
                    prop_assert_eq!(paged.names.get(last), heap.names.get(last));
                }
            }
        }
    }

    /// Truncating the file mid-page (any cut point, never page-aligned
    /// by construction of the sample) makes the paged open a typed
    /// error for every page size — never a panic, never a world.
    #[test]
    fn mid_page_truncation_is_a_typed_error(seed in 0u64..100, cut in 1usize..4096) {
        let bytes = archive_bytes(seed);
        // Map the cut into (0, len) and nudge it off 512-byte alignment
        // so it lands mid-page for every size under test.
        let mut cut = 1 + cut % (bytes.len() - 1);
        if cut.is_multiple_of(512) {
            cut -= 1;
        }
        let archive = TempArchive::new(&bytes[..cut], &format!("trunc{seed}_{cut}"));

        for page_bytes in PAGE_SIZES {
            let result = perils_survey::load_world_with(
                &archive.0,
                SnapshotBackend::Paged {
                    page_bytes,
                    budget_bytes: 2 * page_bytes as u64,
                },
            );
            prop_assert!(
                result.is_err(),
                "truncation to {} of {} bytes loaded anyway (page {} B)",
                cut,
                bytes.len(),
                page_bytes
            );
        }
    }
}
