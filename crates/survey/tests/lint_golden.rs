//! Golden-file and acceptance coverage for the lint engine.
//!
//! Pins all three sinks byte-for-byte on the hand-built `lint_tripwire`
//! fixture (which trips every rule), the fbi.gov case study, and the
//! tiny synthetic survey at seed 20040722. Also checks the structural
//! acceptance criteria: every built-in rule fires on the tripwire, the
//! fbi world's deny finding names the actual stale server, SARIF parses
//! as valid JSON with `runs[0].tool.driver.rules` matching the registry,
//! and the lint rules agree with the `MisconfigMetric` flag counters.
//! Regenerate goldens with
//! `GOLDEN_REGEN=1 cargo test -p perils-survey --test lint_golden`.

use perils_authserver::scenarios::{fbi_case, lint_tripwire, lint_tripwire_targets};
use perils_core::lint::{RuleRegistry, Severity, SeverityOverrides};
use perils_dns::name::name;
use perils_survey::engine::SyntheticSource;
use perils_survey::engine::WorldSource;
use perils_survey::lint::{run_lint, LintFormat, LintReport};
use perils_survey::params::TopologyParams;
use perils_survey::scenario::universe_from_scenario;
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::path::PathBuf;

const SEED: u64 = 20040722;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn check_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); regenerate with GOLDEN_REGEN=1")
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {file}; regenerate with GOLDEN_REGEN=1 if the change is intended"
    );
}

fn lint_scenario(
    scenario: &perils_authserver::scenarios::Scenario,
    targets: Vec<perils_dns::name::DnsName>,
) -> LintReport {
    let universe = universe_from_scenario(scenario);
    run_lint(
        &universe,
        &targets,
        &RuleRegistry::builtin(),
        &SeverityOverrides::new(),
        NonZeroUsize::new(1),
    )
}

fn tripwire_report() -> LintReport {
    lint_scenario(&lint_tripwire(), lint_tripwire_targets())
}

fn fbi_report() -> LintReport {
    lint_scenario(
        &fbi_case(),
        vec![
            name("www.fbi.gov"),
            name("www.sprintip.com"),
            name("www.telemail.net"),
        ],
    )
}

#[test]
fn tripwire_output_matches_goldens_in_all_three_formats() {
    let report = tripwire_report();
    check_golden("lint_tripwire.txt", &report.emit(LintFormat::Text));
    check_golden("lint_tripwire.json", &report.emit(LintFormat::Json));
    check_golden("lint_tripwire.sarif", &report.emit(LintFormat::Sarif));
}

#[test]
fn fbi_output_matches_goldens() {
    let report = fbi_report();
    check_golden("lint_fbi.txt", &report.emit(LintFormat::Text));
    check_golden("lint_fbi.sarif", &report.emit(LintFormat::Sarif));
}

#[test]
fn tiny_synthetic_output_matches_golden() {
    let world = SyntheticSource {
        params: TopologyParams::tiny(SEED),
    }
    .load();
    let names: Vec<_> = world.names.iter().map(|n| n.name.clone()).collect();
    let report = run_lint(
        &world.universe,
        &names,
        &RuleRegistry::builtin(),
        &SeverityOverrides::new(),
        NonZeroUsize::new(1),
    );
    check_golden("lint_tiny.txt", &report.emit(LintFormat::Text));
}

#[test]
fn every_builtin_rule_fires_on_the_tripwire() {
    let report = tripwire_report();
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for id in RuleRegistry::builtin().ids() {
        assert!(fired.contains(id), "rule {id} never fired on the tripwire");
    }
}

#[test]
fn fbi_findings_name_the_actual_servers() {
    let report = fbi_report();
    assert!(report.has_deny(), "the stale usdoj.gov NS is deny-level");

    let lame = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "lame-delegation")
        .expect("lame-delegation fires on the fbi world");
    assert_eq!(lame.subject.name(), &name("usdoj.gov"));
    assert!(
        lame.evidence
            .iter()
            .any(|e| e.at == name("ns.usdoj-archive.zz")),
        "evidence names the dangling host: {lame:?}"
    );

    let choke = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "choke-point")
        .expect("choke-point fires on the fbi world");
    assert!(
        choke
            .evidence
            .iter()
            .any(|e| e.at == name("a.gtld-servers.net")),
        "the registry singleton is the choke: {choke:?}"
    );

    let orphan = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "orphaned-glue")
        .expect("fedworld's stale glue is orphaned");
    assert_eq!(orphan.subject.name(), &name("ns.fedworld.zz"));
}

#[test]
fn sarif_is_valid_json_and_lists_the_registry_rules() {
    for report in [tripwire_report(), fbi_report()] {
        let sarif = report.emit(LintFormat::Sarif);
        perils_util::json::validate(&sarif).expect("SARIF parses as JSON");

        // runs[0].tool.driver.rules must list the registry ids in order —
        // checked structurally (each id appears as a rules entry, in
        // registry order) without a full JSON object model.
        let rules_section = sarif
            .split("\"rules\": [")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("driver.rules present");
        let mut cursor = 0usize;
        for id in RuleRegistry::builtin().ids() {
            let needle = format!("{{\"id\": \"{id}\"");
            let at = rules_section[cursor..]
                .find(&needle)
                .unwrap_or_else(|| panic!("rule {id} missing or out of order in driver.rules"));
            cursor += at;
        }

        let json = report.emit(LintFormat::Json);
        perils_util::json::validate(&json).expect("JSON sink parses");
    }
}

#[test]
fn severity_overrides_relevel_and_suppress() {
    let registry = RuleRegistry::builtin();
    let universe = universe_from_scenario(&fbi_case());
    let targets = vec![name("www.fbi.gov")];

    // Demote the lame delegation: no deny findings remain.
    let mut overrides = SeverityOverrides::new();
    overrides
        .set(&registry, "lame-delegation", Severity::Warn)
        .unwrap();
    let demoted = run_lint(
        &universe,
        &targets,
        &registry,
        &overrides,
        NonZeroUsize::new(1),
    );
    assert!(!demoted.has_deny());
    assert!(demoted
        .diagnostics
        .iter()
        .any(|d| d.rule == "lame-delegation" && d.severity == Severity::Warn));

    // Allow suppresses the findings but keeps the rule listed.
    let mut overrides = SeverityOverrides::new();
    overrides
        .set(&registry, "lame-delegation", Severity::Allow)
        .unwrap();
    let suppressed = run_lint(
        &universe,
        &targets,
        &registry,
        &overrides,
        NonZeroUsize::new(1),
    );
    assert!(suppressed
        .diagnostics
        .iter()
        .all(|d| d.rule != "lame-delegation"));
    assert!(suppressed
        .rules
        .iter()
        .any(|m| m.id == "lame-delegation" && m.severity == Severity::Allow));

    // Promote a warn rule: its findings gate.
    let mut overrides = SeverityOverrides::new();
    overrides
        .set(&registry, "single-operator", Severity::Deny)
        .unwrap();
    let promoted = run_lint(
        &universe,
        &targets,
        &registry,
        &overrides,
        NonZeroUsize::new(1),
    );
    assert!(promoted
        .diagnostics
        .iter()
        .any(|d| d.rule == "single-operator" && d.severity == Severity::Deny));
}

/// The aggregate `MisconfigMetric` counters and the per-zone lint rules
/// are computed from the same predicates; this pins the agreement on a
/// real universe, per zone and per flag.
#[test]
fn lint_rules_agree_with_misconfig_flags() {
    use perils_core::misconfig::{
        MisconfigIndex, FLAG_SINGLE_OPERATOR, FLAG_SINGLE_SERVER, FLAG_UNRESOLVABLE_NS,
    };

    let universe = universe_from_scenario(&lint_tripwire());
    let report = tripwire_report();
    let index = MisconfigIndex::build(&universe);

    for zid in universe.zone_ids() {
        let origin = &universe.zone(zid).origin;
        let flags = index.zone_flags(zid);
        let has = |rule: &str| {
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == rule && d.subject.kind() == "zone" && d.subject.name() == origin)
        };
        assert_eq!(
            flags & FLAG_SINGLE_SERVER != 0,
            has("single-server"),
            "single-server disagreement on {origin}"
        );
        assert_eq!(
            flags & FLAG_SINGLE_OPERATOR != 0,
            has("single-operator"),
            "single-operator disagreement on {origin}"
        );
        assert_eq!(
            flags & FLAG_UNRESOLVABLE_NS != 0,
            has("lame-delegation"),
            "lame-delegation disagreement on {origin}"
        );
    }
}
