//! Streamed-vs-materialized equivalence: the streaming ingestion path
//! must be provably equal to the monolithic build.
//!
//! Three layers of pinning:
//!
//! 1. **Bit-identity of the default path**: `SyntheticSource::stream()`
//!    collected through the incremental builder produces *exactly* the
//!    universe `SyntheticWorld::generate` materializes — same ids, same
//!    entries, same links — so every golden figure is untouched by the
//!    refactor.
//! 2. **Order independence** (property): the same event feed permuted
//!    arbitrarily, or re-dealt into any number of ingestion shards,
//!    produces a byte-identical *canonical* universe
//!    (`UniverseBuilder::finish_canonical`), with a byte-identical
//!    `DependencyIndex` (observed through chains, dependencies and
//!    per-name closures) and a byte-identical full figure set.
//! 3. **Engine equivalence**: `Engine::run_batched` (the streamed,
//!    bounded-memory pass) equals `Engine::run` column for column (also
//!    covered per batch size in `prop_engine.rs`).

use proptest::prelude::*;

use perils_core::closure::DependencyIndex;
use perils_core::universe::{Universe, UniverseEvent};
use perils_core::ZombieDelegationMetric;
use perils_survey::engine::{AnalysisWorld, Engine, SurveyReport, SyntheticSource, WorldSource};
use perils_survey::figures::ZombieFigure;
use perils_survey::params::TopologyParams;
use perils_survey::render::FigureRegistry;
use perils_survey::topology::{SurveyName, SyntheticWorld};
use perils_util::Rng;
use perils_vulndb::VulnDb;

fn source(seed: u64) -> SyntheticSource {
    SyntheticSource {
        params: TopologyParams::tiny(seed),
    }
}

/// The full event feed plus the name sample of a tiny synthetic world.
fn feed(seed: u64) -> (Vec<UniverseEvent>, Vec<SurveyName>, Vec<usize>) {
    let mut stream = source(seed).stream();
    let events: Vec<UniverseEvent> = stream.events().collect();
    let names: Vec<SurveyName> = stream.names().collect();
    let top500 = stream.top500().to_vec();
    (events, names, top500)
}

fn build(events: impl IntoIterator<Item = UniverseEvent>, canonical: bool) -> Universe {
    let db = VulnDb::isc_feb_2004();
    let mut builder = Universe::builder();
    for event in events {
        builder.apply(event, &db);
    }
    if canonical {
        builder.finish_canonical()
    } else {
        builder.finish()
    }
}

/// Every observable of the dependency index, for byte-comparison: the
/// per-server delegation chain and dependency rows, and the full closure
/// (server and zone sets) of every surveyed name. `threads` selects the
/// build path — serial Tarjan + serial recurrence at 1, parallel SCC +
/// tree-parallel rows otherwise — so comparing across thread counts pins
/// the parallel pipeline against the serial one.
fn index_observations(universe: &Universe, names: &[SurveyName], threads: usize) -> Vec<Vec<u32>> {
    let index = DependencyIndex::build_with_threads(universe, threads);
    let mut out = Vec::new();
    for sid in universe.server_ids() {
        out.push(index.chain_of(sid).map(|z| z.0).collect());
        out.push(index.deps_of(sid).map(|s| s.0).collect());
    }
    let mut ws = index.workspace();
    for name in names {
        let closure = index.closure_for_with(universe, &name.name, &mut ws);
        out.push(closure.servers.iter().map(|s| s.0).collect());
        out.push(closure.zones.iter().map(|z| z.0).collect());
    }
    out
}

/// The full rendered figure set (text + CSV bytes per figure) over a
/// universe with the given name sample.
fn figure_bytes(universe: Universe, names: Vec<SurveyName>, top500: Vec<usize>) -> Vec<String> {
    let report: SurveyReport = Engine::with_extended_metrics()
        .register(ZombieDelegationMetric)
        .run_world(AnalysisWorld {
            universe,
            names,
            top500,
        });
    let registry = FigureRegistry::extended().register(ZombieFigure);
    registry
        .build_all(&report)
        .iter()
        .map(|outcome| {
            let figure = outcome.rendered().expect("figure renders");
            format!("{}\n{}", figure.text(), figure.csv())
        })
        .collect()
}

/// All three rendered lint serializations over a universe with the given
/// name sample, at a given thread count.
fn lint_bytes(universe: &Universe, names: &[SurveyName], threads: usize) -> Vec<String> {
    use perils_core::lint::{RuleRegistry, SeverityOverrides};
    use perils_survey::lint::{run_lint, LintFormat};
    let names: Vec<_> = names.iter().map(|n| n.name.clone()).collect();
    let report = run_lint(
        universe,
        &names,
        &RuleRegistry::builtin(),
        &SeverityOverrides::new(),
        std::num::NonZeroUsize::new(threads),
    );
    vec![
        report.emit(LintFormat::Text),
        report.emit(LintFormat::Json),
        report.emit(LintFormat::Sarif),
    ]
}

#[test]
fn lint_output_is_thread_count_invariant() {
    let world = source(20040722).load();
    let serial = lint_bytes(&world.universe, &world.names, 1);
    for threads in [2, 8] {
        assert_eq!(
            lint_bytes(&world.universe, &world.names, threads),
            serial,
            "lint output diverged at {threads} threads"
        );
    }
}

#[test]
fn streamed_default_load_is_bit_identical_to_materialized_generate() {
    for seed in [7, 20040722] {
        let materialized = SyntheticWorld::generate(&TopologyParams::tiny(seed));
        let streamed = source(seed).load();
        assert_eq!(
            streamed.universe, materialized.universe,
            "streamed default path must reproduce the materialized universe verbatim (seed {seed})"
        );
        assert_eq!(streamed.names.len(), materialized.names.len());
        for (a, b) in streamed.names.iter().zip(&materialized.names) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.popularity_rank, b.popularity_rank);
        }
        assert_eq!(streamed.top500, materialized.top500);
    }
}

#[test]
fn decomposed_world_round_trips_through_the_stream() {
    // An explicit decomposition (`Universe::into_events`) fed back
    // through a WorldStream rebuilds the universe verbatim. (Prebuilt
    // worlds wrapped via `stream()` skip decomposition entirely — the
    // universe is carried whole — so this exercises the event path on
    // purpose.)
    let world = SyntheticWorld::generate(&TopologyParams::tiny(11)).load();
    let reference = world.universe.clone();
    let rebuilt = perils_survey::WorldStream::new(
        world.universe.into_events(),
        world.names.into_iter(),
        world.top500,
    )
    .collect();
    assert_eq!(rebuilt.universe, reference);

    // And the prebuilt fast path returns the same universe without a
    // rebuild.
    let world2 = SyntheticWorld::generate(&TopologyParams::tiny(11)).load();
    assert_eq!(world2.stream().collect().universe, reference);
}

/// Column-for-column report equality (the value aggregate compared by
/// ranking, as in `prop_engine.rs`, but assert-based for plain tests).
fn assert_reports_equal(a: &SurveyReport, b: &SurveyReport, what: &str) {
    use perils_core::metric::MetricColumn;
    let ids_a: Vec<&str> = a.column_ids().collect();
    let ids_b: Vec<&str> = b.column_ids().collect();
    assert_eq!(ids_a, ids_b, "column sets differ ({what})");
    for id in ids_a {
        match (a.column(id).unwrap(), b.column(id).unwrap()) {
            (MetricColumn::Counts(x), MetricColumn::Counts(y)) => {
                assert_eq!(x, y, "{id} differs ({what})")
            }
            (MetricColumn::Floats(x), MetricColumn::Floats(y)) => {
                assert_eq!(x, y, "{id} differs ({what})")
            }
            (MetricColumn::Value(x), MetricColumn::Value(y)) => {
                assert_eq!(x.names_seen(), y.names_seen(), "{id} ({what})");
                assert_eq!(x.ranking(), y.ranking(), "{id} ranking ({what})");
            }
            _ => panic!("{id} changed column kind ({what})"),
        }
    }
}

/// The parallel ingestion front-end: the same feed dealt round-robin
/// into N shards drained concurrently into one builder produces the
/// canonical universe for every shard count — and `Engine::run_batched`
/// over a sharded stream produces the same report as the monolithic
/// world.
#[test]
fn sharded_ingestion_front_end_is_shard_count_invariant() {
    let (events, names, top500) = feed(20040722);
    let reference = build(events.clone(), true);

    let deal = |shards: usize| -> perils_survey::WorldStream {
        let mut dealt: Vec<Vec<UniverseEvent>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, event) in events.iter().cloned().enumerate() {
            dealt[i % shards].push(event);
        }
        let mut stream = perils_survey::WorldStream::new(
            std::iter::empty(),
            names.clone().into_iter(),
            top500.clone(),
        );
        for shard in dealt {
            stream = stream.with_shard(shard.into_iter());
        }
        stream
    };

    for shards in [1usize, 2, 8] {
        assert_eq!(
            deal(shards).build_universe(),
            reference,
            "sharded ingestion diverged at {shards} shards"
        );
    }

    let engine = Engine::with_extended_metrics().register(ZombieDelegationMetric);
    let expected = engine.run_world(AnalysisWorld {
        universe: reference,
        names: names.clone(),
        top500: top500.clone(),
    });
    let got = engine.run_stream(deal(3), std::num::NonZeroUsize::new(64).unwrap());
    assert_reports_equal(&got, &expected, "sharded run_batched vs monolithic run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any event-order permutation, and any ingestion shard count,
    /// produces a canonical universe — and therefore a dependency index
    /// and a full figure set — byte-identical to the monolithic build.
    #[test]
    fn any_event_permutation_and_sharding_is_byte_identical(
        seed in 0u64..1_000,
        shuffle_seed in 0u64..1_000,
        shards in 1usize..5,
    ) {
        let (events, names, top500) = feed(seed);
        let baseline = build(events.clone(), true);

        // Arbitrary permutation of the whole feed.
        let mut permuted = events.clone();
        Rng::new(shuffle_seed).shuffle(&mut permuted);
        let from_permuted = build(permuted.clone(), true);
        prop_assert_eq!(&from_permuted, &baseline, "permuted feed diverged");

        // Re-deal the permuted feed round-robin into `shards` ingestion
        // shards, then ingest shard by shard (what a sharded loader does).
        let mut dealt: Vec<Vec<UniverseEvent>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, event) in permuted.into_iter().enumerate() {
            dealt[i % shards].push(event);
        }
        let from_shards = build(dealt.into_iter().flatten(), true);
        prop_assert_eq!(&from_shards, &baseline, "sharded feed diverged");

        // Equal universes ⇒ equal dependency indexes, observed through
        // chains, dependency rows and every surveyed name's closure —
        // across the serial (1 thread) and parallel (2, 8 threads) build
        // pipelines at the same time: parallel SCC ≡ Tarjan and
        // tree-parallel zone rows ≡ the serial recurrence.
        let serial_obs = index_observations(&baseline, &names, 1);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &index_observations(&from_permuted, &names, threads),
                &serial_obs,
                "index diverged at {} threads", threads
            );
        }

        // ... and byte-identical lint diagnostics in every serialization,
        // regardless of worker count on either side.
        prop_assert_eq!(
            lint_bytes(&from_permuted, &names, 8),
            lint_bytes(&baseline, &names, 1),
            "lint output diverged across permutation/sharding/threads"
        );

        // ... and a byte-identical full figure set.
        prop_assert_eq!(
            figure_bytes(from_permuted, names.clone(), top500.clone()),
            figure_bytes(baseline, names, top500)
        );
    }
}
