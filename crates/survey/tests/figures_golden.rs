//! Golden-file coverage for the figure registry at tiny scale, seed
//! 20040722 (the paper's crawl date).
//!
//! Every registered figure's aligned-text and CSV serializations are
//! pinned byte-for-byte against `tests/golden/<id>.{txt,csv}`; a second
//! test pins the registry output against the legacy free-function
//! renderers, and a third checks that figures whose metrics are absent
//! are reported as skipped rather than panicking. Regenerate goldens
//! with `GOLDEN_REGEN=1 cargo test -p perils-survey --test figures_golden`.

use perils_core::universe::Universe;
use perils_core::ZombieDelegationMetric;
use perils_dns::name::{name, DnsName};
use perils_survey::engine::{AnalysisWorld, Engine, SurveyReport, SyntheticSource};
use perils_survey::figures::{self, ZombieFigure};
use perils_survey::params::TopologyParams;
use perils_survey::render::{FigureOutcome, FigureRegistry};
use std::path::PathBuf;

const SEED: u64 = 20040722;

/// The figures binary's full configuration: extended metrics plus the
/// zombie-delegation workload.
fn full_report() -> SurveyReport {
    Engine::with_extended_metrics()
        .register(ZombieDelegationMetric)
        .run(SyntheticSource {
            params: TopologyParams::tiny(SEED),
        })
}

fn full_registry() -> FigureRegistry {
    FigureRegistry::extended().register(ZombieFigure)
}

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn check_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); regenerate with GOLDEN_REGEN=1")
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {file}; regenerate with GOLDEN_REGEN=1 if the change is intended"
    );
}

#[test]
fn every_registered_figure_matches_golden_text_and_csv() {
    let report = full_report();
    let outcomes = full_registry().build_all(&report);
    assert_eq!(outcomes.len(), 12, "twelve registered figures");
    for outcome in &outcomes {
        let figure = outcome
            .rendered()
            .unwrap_or_else(|| panic!("figure {:?} did not render: {outcome:?}", outcome.id()));
        check_golden(&format!("{}.txt", figure.id()), figure.text());
        check_golden(&format!("{}.csv", figure.id()), &figure.csv());
    }
}

#[test]
fn registry_output_is_byte_identical_to_legacy_renderers() {
    let report = full_report();
    let registry = full_registry();
    let legacy: Vec<(&str, String, String)> = vec![
        (
            "headline",
            figures::headline(&report).render(),
            figures::headline(&report).to_csv(),
        ),
        (
            "fig2",
            figures::fig2(&report).render(),
            figures::fig2(&report).to_csv(),
        ),
        (
            "fig3",
            figures::fig3(&report).render(),
            figures::fig3(&report).to_csv(),
        ),
        (
            "fig4",
            figures::fig4(&report).render(),
            figures::fig4(&report).to_csv(),
        ),
        (
            "fig5",
            figures::fig5(&report).render(),
            figures::fig5(&report).to_csv(),
        ),
        (
            "fig6",
            figures::fig6(&report).render(),
            figures::fig6(&report).to_csv(),
        ),
        (
            "fig7",
            figures::fig7(&report).render(),
            figures::fig7(&report).to_csv(),
        ),
        (
            "fig8",
            figures::fig8(&report).render("Figure 8 — Number of names controlled by nameservers"),
            figures::fig8(&report).to_csv(),
        ),
        (
            "fig9",
            figures::fig9(&report)
                .render("Figure 9 — Names controlled by .edu and .org nameservers"),
            figures::fig9(&report).to_csv(),
        ),
    ];
    for (id, text, csv) in legacy {
        let built = registry.build(id, &report).expect(id);
        assert_eq!(built.text(), text, "{id} text drifted from legacy renderer");
        assert_eq!(built.csv(), csv, "{id} CSV drifted from legacy renderer");
    }
}

/// The stale-delegation generator knob gives the zombie figure signal on
/// synthetic worlds; this golden pins its output with the knob on (the
/// knob-off golden — all zeros — is `zombie.{txt,csv}` above).
#[test]
fn zombie_figure_with_stale_knob_matches_golden() {
    let mut params = TopologyParams::tiny(SEED);
    params.stale_delegation_fraction = 0.12;
    let report = Engine::new()
        .register(ZombieDelegationMetric)
        .run(SyntheticSource { params });
    let figure = FigureRegistry::new()
        .register(ZombieFigure)
        .build("zombie", &report)
        .expect("zombie figure renders");
    let summary = figures::ZombieSummary::from_report(&report).expect("columns present");
    assert!(
        summary.names_with_dead_dep > 0 && summary.orphaned_names > 0,
        "the knob must give the metric signal: {summary:?}"
    );
    check_golden("zombie_stale.txt", figure.text());
    check_golden("zombie_stale.csv", &figure.csv());
}

#[test]
fn figures_with_unregistered_metrics_are_skipped_not_panicking() {
    // Only the built-in metrics run: misconfig, dnssec and zombie columns
    // are absent, so those figures must skip while the classic nine render.
    let report = Engine::with_builtin_metrics().run(SyntheticSource {
        params: TopologyParams::tiny(SEED),
    });
    let outcomes = full_registry().build_all(&report);
    let mut skipped = Vec::new();
    for outcome in &outcomes {
        match outcome {
            FigureOutcome::Rendered(_) => {}
            FigureOutcome::Skipped { id, missing } => {
                assert!(!missing.is_empty());
                skipped.push(id.clone());
            }
            FigureOutcome::Failed { id, error } => panic!("figure {id:?} failed: {error}"),
        }
    }
    assert_eq!(skipped, vec!["misconfig", "dnssec", "zombie"]);
}

/// The zombie-delegation workload end to end through only the public
/// `NameMetric` / `Figure` / `FigureRegistry` APIs: a hand-built decayed
/// world flows from engine registration to rendered figure with no
/// engine-internal or per-figure CLI code involved.
#[test]
fn zombie_workload_end_to_end_via_public_apis() {
    let mut b = Universe::builder();
    b.raw_server(&name("a.root-servers.net"), false, true);
    b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
    b.add_zone(&name("com"), &[name("a.root-servers.net")]);
    b.add_zone(&name("net"), &[name("a.root-servers.net")]);
    // stale.com's delegation points only at a vanished branch; half.com
    // keeps one live server; alive.net is healthy and glued.
    b.add_zone(
        &name("stale.com"),
        &[name("ns1.ghost.zz"), name("ns2.ghost.zz")],
    );
    b.add_zone(
        &name("half.com"),
        &[name("ns.ghost.zz"), name("ns.alive.net")],
    );
    b.add_zone(&name("alive.net"), &[name("ns.alive.net")]);
    let world = AnalysisWorld::from_targets(
        b.finish(),
        vec![
            name("www.stale.com"),
            name("www.half.com"),
            name("www.alive.net"),
        ],
    );

    let report = Engine::new().register(ZombieDelegationMetric).run(world);
    let registry = FigureRegistry::new().register(ZombieFigure);
    let outcomes = registry.build_all(&report);
    assert_eq!(outcomes.len(), 1);
    let figure = outcomes[0].rendered().expect("zombie figure renders");
    assert_eq!(figure.id(), "zombie");
    let text = figure.text();
    assert!(
        text.contains("names w/ dead dependency") && text.contains("2 (66.7%)"),
        "stale.com and half.com names both lean on dead infrastructure:\n{text}"
    );
    assert!(
        text.contains("orphaned names (zombie chain)"),
        "summary row present:\n{text}"
    );
    let summary = figures::ZombieSummary::from_report(&report).expect("columns present");
    assert_eq!(summary.names, 3);
    assert_eq!(summary.names_with_dead_dep, 2);
    assert_eq!(summary.orphaned_names, 1, "only stale.com is orphaned");
    assert_eq!(summary.max_zombie_zones, 1);
    // The JSON serialization carries the same rows.
    assert!(figure
        .json()
        .contains("\"orphaned names (zombie chain)\",\"1\""));
}
